open Import

type dispatch = Auto | Reservation | Shared

type outcome = {
  computation : string;
  arrived : Time.t;
  deadline : Time.t;
  admitted : bool;
  reject_reason : string option;
  finished : Time.t option;
  unfinished : (Located_type.t * int) list;
}

let on_time o =
  o.admitted
  && match o.finished with Some t -> t <= o.deadline | None -> false

let missed o = o.admitted && not (on_time o)

type type_stat = { ltype : Located_type.t; capacity : int; consumed : int }

type report = {
  policy : Admission.policy;
  dispatch_used : dispatch;
  horizon : Time.t;
  offered : int;
  admitted : int;
  rejected : int;
  completed_on_time : int;
  missed_deadlines : int;
  capacity_total : int;
  consumed_total : int;
  type_stats : type_stat list;
  outcomes : outcome list;
}

let utilization r =
  if r.capacity_total <= 0 then 0.
  else float_of_int r.consumed_total /. float_of_int r.capacity_total

let goodput r =
  if r.offered <= 0 then 0.
  else float_of_int r.completed_on_time /. float_of_int r.offered

let is_rota_family = function
  | Admission.Rota | Admission.Rota_unmerged | Admission.Rota_given_order ->
      true
  | Admission.Aggregate | Admission.Optimistic -> false

(* Processor sharing of one type's rate among wanting actors: an even
   split, with the remainder going to the earliest deadlines. *)
let shared_allocations rate wanters =
  let n = List.length wanters in
  if n = 0 then []
  else
    let base = rate / n and extra = rate mod n in
    List.mapi (fun i w -> (w, if i < extra then base + 1 else base)) wanters

let head_wants (p : State.pending) xi =
  match p.State.steps with
  | [] -> false
  | head :: _ ->
      List.exists
        (fun (a : Requirement.amount) -> Located_type.equal a.Requirement.ltype xi)
        head

type event =
  | Capacity_joined of { at : Time.t; quantity : int }
  | Admitted of { id : string; at : Time.t; reason : string }
  | Rejected of { id : string; at : Time.t; reason : string }
  | Completed of { id : string; at : Time.t }
  | Killed of { id : string; at : Time.t; owed : int }

let event_time = function
  | Capacity_joined { at; _ }
  | Admitted { at; _ }
  | Rejected { at; _ }
  | Completed { at; _ }
  | Killed { at; _ } ->
      at

let payload_of_event ~policy = function
  | Capacity_joined { quantity; _ } ->
      Rota_obs.Events.Capacity_joined { quantity }
  | Admitted { id; reason; _ } -> Rota_obs.Events.Admitted { id; policy; reason }
  | Rejected { id; reason; _ } -> Rota_obs.Events.Rejected { id; policy; reason }
  | Completed { id; _ } -> Rota_obs.Events.Completed { id }
  | Killed { id; owed; _ } -> Rota_obs.Events.Killed { id; owed }

(* One formatting path for engine events: delegate to the telemetry
   layer's renderer (the policy label does not show in the rendering). *)
let pp_event ppf e =
  Rota_obs.Events.pp_payload ~sim:(Some (event_time e)) ppf
    (payload_of_event ~policy:"" e)

(* --- metrics ------------------------------------------------------------ *)

let m_runs = Rota_obs.Metrics.counter "engine/runs"
let m_run_s = Rota_obs.Metrics.histogram "engine/run_s"
let m_ticks = Rota_obs.Metrics.counter "engine/ticks"
let m_arrivals = Rota_obs.Metrics.counter "engine/arrivals"
let m_capacity_joins = Rota_obs.Metrics.counter "engine/capacity_joins"
let m_capacity_quantity = Rota_obs.Metrics.counter "engine/capacity_quantity"
let m_completions = Rota_obs.Metrics.counter "engine/completions"
let m_kills = Rota_obs.Metrics.counter "engine/kills"
let m_owed = Rota_obs.Metrics.counter "engine/owed_work"
let m_consumed = Rota_obs.Metrics.counter "engine/consumed_quantity"
let g_queue = Rota_obs.Metrics.gauge "engine/queue_depth"
let g_running = Rota_obs.Metrics.gauge "engine/running"
let g_ledger = Rota_obs.Metrics.gauge "engine/ledger_size"

let depth_buckets =
  [| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. |]

let h_queue_depth =
  Rota_obs.Metrics.histogram ~buckets:depth_buckets "engine/queue_depth_dist"

let run ?(cost_model = Cost_model.default) ?true_cost_model
    ?(dispatch = Auto) ?(observer = fun (_ : event) -> ()) ~policy trace =
  let true_cost_model = Option.value true_cost_model ~default:cost_model in
  let horizon = Trace.horizon trace in
  let dispatch_used =
    match dispatch with
    | Auto -> if is_rota_family policy then Reservation else Shared
    | (Reservation | Shared) as d -> d
  in
  let policy_label = Admission.policy_name policy in
  ignore
    (Rota_obs.Tracer.new_run ~sim:0
       (Printf.sprintf "engine policy=%s dispatch=%s horizon=%d" policy_label
          (match dispatch_used with
          | Reservation -> "reservation"
          | Shared -> "shared"
          | Auto -> "auto")
          horizon));
  Rota_obs.Metrics.incr m_runs;
  Rota_obs.Tracer.with_span ~sim:0 "engine/run" @@ fun () ->
  Rota_obs.Metrics.time m_run_s @@ fun () ->
  let events = Event_queue.of_list (Trace.events trace) in
  let state = ref (State.make ~available:Resource_set.empty ~now:0) in
  let admission = ref (Admission.create ~cost_model policy Resource_set.empty) in
  let outcomes : (string, outcome) Hashtbl.t = Hashtbl.create 64 in
  let arrival_order = ref [] in
  let running : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let capacity_total = ref 0 and consumed_total = ref 0 in
  let offered = ref 0 in
  let per_type_capacity : (Located_type.t, int) Hashtbl.t = Hashtbl.create 16 in
  let per_type_consumed : (Located_type.t, int) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl xi q =
    Hashtbl.replace tbl xi (q + Option.value (Hashtbl.find_opt tbl xi) ~default:0)
  in
  (* Every run-time notification goes through here: the caller's observer
     plus the telemetry sink, stamped with simulated time, in one place. *)
  let notify e =
    observer e;
    Rota_obs.Tracer.emit ~sim:(event_time e)
      (payload_of_event ~policy:policy_label e)
  in
  (* Interacting-actor sessions: each segment runs as its own pending batch
     under a derived id, released only once its dependencies complete. *)
  let module Srt = struct
    type t = {
      session : Session.t;
      nodes : Precedence.node list;
      mutable released : string list;  (* node ids accommodated so far *)
      mutable completed : string list;  (* node ids fully drained *)
    }
  end in
  let active_sessions : (string, Srt.t) Hashtbl.t = Hashtbl.create 8 in
  let segment_cid session_id node_id = session_id ^ "/" ^ node_id in

  let record_finish id at =
    match Hashtbl.find_opt outcomes id with
    | Some o when o.finished = None ->
        Hashtbl.replace outcomes id { o with finished = Some at };
        Hashtbl.remove running id;
        admission := Admission.complete !admission ~computation:id;
        Rota_obs.Metrics.incr m_completions;
        notify (Completed { id; at })
    | Some _ | None -> ()
  in

  let consume ~computation ~actor amounts =
    let amounts = List.filter (fun (_, q) -> q > 0) amounts in
    if amounts <> [] then begin
      (* Clamp to what the pending actually still needs, so accounting is
         exact even when a share overshoots the remaining requirement. *)
      let needed =
        match
          List.find_opt
            (fun (p : State.pending) ->
              String.equal p.State.computation computation
              && Actor_name.equal p.State.actor actor)
            !state.State.pending
        with
        | None -> []
        | Some p -> (
            match p.State.steps with
            | [] -> []
            | head :: _ ->
                List.map
                  (fun (xi, q) ->
                    let need =
                      List.fold_left
                        (fun acc (a : Requirement.amount) ->
                          if Located_type.equal a.Requirement.ltype xi then
                            acc + a.Requirement.quantity
                          else acc)
                        0 head
                    in
                    (xi, min q need))
                  amounts)
      in
      let total = List.fold_left (fun acc (_, q) -> acc + q) 0 needed in
      if total > 0 then begin
        consumed_total := !consumed_total + total;
        Rota_obs.Metrics.add m_consumed total;
        List.iter (fun (xi, q) -> bump per_type_consumed xi q) needed;
        state := State.consume_in_head !state ~computation ~actor needed
      end
    end
  in

  (* Accommodate every segment whose dependencies have all completed and
     whose work is non-empty; empty segments complete instantly, possibly
     cascading further releases. *)
  let rec release_ready (rt : Srt.t) now =
    let id = rt.Srt.session.Session.id in
    let progressed = ref false in
    List.iter
      (fun (n : Precedence.node) ->
        let nid = n.Precedence.id in
        if
          (not (List.mem nid rt.Srt.released))
          && List.for_all (fun d -> List.mem d rt.Srt.completed) n.Precedence.deps
        then begin
          rt.Srt.released <- nid :: rt.Srt.released;
          progressed := true;
          let steps = n.Precedence.requirement.Requirement.steps in
          if steps = [] then rt.Srt.completed <- nid :: rt.Srt.completed
          else
            (* A segment released at (or past) the deadline has no window
               left; it stays pending-less and the deadline pass kills the
               session. *)
            match
              Interval.make
                ~start:(Time.max now rt.Srt.session.Session.start)
                ~stop:rt.Srt.session.Session.deadline
            with
            | None -> ()
            | Some window -> (
                match
                  State.accommodate_parts !state ~id:(segment_cid id nid)
                    ~window
                    [ (Actor_name.make nid, steps) ]
                with
                | Ok s -> state := s
                | Error e -> failwith ("engine: session segment: " ^ e))
        end)
      rt.Srt.nodes;
    if !progressed then release_ready rt now
  in

  let process_session_arrival t session =
    incr offered;
    Rota_obs.Metrics.incr m_arrivals;
    let id = session.Session.id in
    arrival_order := id :: !arrival_order;
    let adm, decision = Admission.request_session !admission ~now:t session in
    admission := adm;
    Hashtbl.replace outcomes id
      {
        computation = id;
        arrived = t;
        deadline = session.Session.deadline;
        admitted = decision.Admission.admitted;
        reject_reason =
          (if decision.Admission.admitted then None
           else Some decision.Admission.reason);
        finished = None;
        unfinished = [];
      };
    (if decision.Admission.admitted then
       notify (Admitted { id; at = t; reason = decision.Admission.reason })
     else notify (Rejected { id; at = t; reason = decision.Admission.reason }));
    if decision.Admission.admitted then begin
      let rt =
        {
          Srt.session;
          nodes = Session.to_nodes true_cost_model session;
          released = [];
          completed = [];
        }
      in
      Hashtbl.replace active_sessions id rt;
      Hashtbl.replace running id ();
      release_ready rt t;
      if List.length rt.Srt.completed = List.length rt.Srt.nodes then begin
        Hashtbl.remove active_sessions id;
        record_finish id t
      end
    end
  in

  let process_event t = function
    | Trace.Join theta ->
        let clipped = Resource_set.truncate_before theta t in
        let counted =
          match Interval.make ~start:t ~stop:horizon with
          | Some w ->
              let within = Resource_set.restrict clipped w in
              Resource_set.fold
                (fun xi profile () -> bump per_type_capacity xi (Profile.total profile))
                within ();
              Resource_set.total within
          | None -> 0
        in
        capacity_total := !capacity_total + counted;
        state := State.acquire !state clipped;
        admission := Admission.add_capacity !admission clipped;
        Rota_obs.Metrics.incr m_capacity_joins;
        Rota_obs.Metrics.add m_capacity_quantity counted;
        notify (Capacity_joined { at = t; quantity = counted })
    | Trace.Arrive_session session -> process_session_arrival t session
    | Trace.Arrive computation ->
        incr offered;
        Rota_obs.Metrics.incr m_arrivals;
        let id = computation.Computation.id in
        arrival_order := id :: !arrival_order;
        let adm, decision = Admission.request !admission ~now:t computation in
        admission := adm;
        let outcome =
          {
            computation = id;
            arrived = t;
            deadline = computation.Computation.deadline;
            admitted = decision.Admission.admitted;
            reject_reason =
              (if decision.Admission.admitted then None
               else Some decision.Admission.reason);
            finished = None;
            unfinished = [];
          }
        in
        Hashtbl.replace outcomes id outcome;
        (if decision.Admission.admitted then
           notify (Admitted { id; at = t; reason = decision.Admission.reason })
         else
           notify
             (Rejected { id; at = t; reason = decision.Admission.reason }));
        if decision.Admission.admitted then begin
          let conc = Computation.to_concurrent true_cost_model computation in
          let parts =
            List.map2
              (fun (p : Program.t) (part : Requirement.complex) ->
                (p.Program.name, part.Requirement.steps))
              computation.Computation.programs conc.Requirement.parts
          in
          match
            State.accommodate_parts !state ~id
              ~window:(Computation.window computation)
              parts
          with
          | Ok s ->
              state := s;
              Hashtbl.replace running id ();
              (* A workless computation finishes instantly. *)
              if State.pending_of s ~computation:id = [] then record_finish id t
          | Error e ->
              (* Ids are unique per trace and deadlines were checked by the
                 admission layer. *)
              failwith ("engine: accommodate failed: " ^ e)
        end
  in

  let dispatch_reservation t =
    let calendar = Admission.calendar !admission in
    List.iter
      (fun (entry : Calendar.entry) ->
        let is_session = Hashtbl.mem active_sessions entry.Calendar.computation in
        List.iter
          (fun (actor, (schedule : Accommodation.schedule)) ->
            let amounts =
              Resource_set.fold
                (fun xi profile acc ->
                  let rate = Profile.rate_at profile t in
                  if rate > 0 then (xi, rate) :: acc else acc)
                schedule.Accommodation.reservation []
            in
            let computation =
              if is_session then
                segment_cid entry.Calendar.computation (Actor_name.name actor)
              else entry.Calendar.computation
            in
            consume ~computation ~actor amounts)
          entry.Calendar.schedules)
      (Calendar.entries calendar)
  in

  let dispatch_shared t =
    let snapshot = !state in
    Resource_set.fold
      (fun xi profile () ->
        let rate = Profile.rate_at profile t in
        if rate > 0 then begin
          let wanters =
            List.filter
              (fun (p : State.pending) ->
                Interval.mem t p.State.window && head_wants p xi)
              snapshot.State.pending
            |> List.sort
                 (fun (p1 : State.pending) (p2 : State.pending) ->
                   match
                     Time.compare
                       (Interval.stop p1.State.window)
                       (Interval.stop p2.State.window)
                   with
                   | 0 -> String.compare p1.State.computation p2.State.computation
                   | c -> c)
          in
          List.iter
            (fun ((p : State.pending), share) ->
              consume ~computation:p.State.computation ~actor:p.State.actor
                [ (xi, share) ])
            (shared_allocations rate wanters)
        end)
      snapshot.State.available ()
  in

  (* Metric sampling: at the configured cadence, snapshot every counter
     and gauge into the trace so registry series become time series
     (Tracer.sample_metrics is a no-op without a sink + enabled
     registry). *)
  let sample_every = Rota_obs.Tracer.sample_period () in
  for t = 0 to horizon - 1 do
    if sample_every > 0 && t mod sample_every = 0 then
      Rota_obs.Tracer.sample_metrics ~sim:t ();
    Rota_obs.Metrics.incr m_ticks;
    if Rota_obs.Metrics.enabled () then begin
      let depth = List.length !state.State.pending in
      Rota_obs.Metrics.set g_queue depth;
      Rota_obs.Metrics.observe h_queue_depth (float_of_int depth);
      Rota_obs.Metrics.set g_running (Hashtbl.length running);
      Rota_obs.Metrics.set g_ledger (Admission.ledger_size !admission)
    end;
    List.iter (fun (_, e) -> process_event t e) (Event_queue.pop_until events t);
    (match dispatch_used with
    | Reservation -> dispatch_reservation t
    | Shared -> dispatch_shared t
    | Auto -> assert false);
    (* Completions: session segments first (they may release successors)... *)
    Hashtbl.iter
      (fun id (rt : Srt.t) ->
        let newly_done =
          List.filter
            (fun nid ->
              (not (List.mem nid rt.Srt.completed))
              && State.pending_of !state ~computation:(segment_cid id nid) = [])
            rt.Srt.released
        in
        if newly_done <> [] then begin
          rt.Srt.completed <- newly_done @ rt.Srt.completed;
          release_ready rt (Time.succ t)
        end;
        if List.length rt.Srt.completed = List.length rt.Srt.nodes then begin
          Hashtbl.remove active_sessions id;
          record_finish id (Time.succ t)
        end)
      (Hashtbl.copy active_sessions);
    (* ... then plain computations. *)
    Hashtbl.iter
      (fun id () ->
        if
          (not (Hashtbl.mem active_sessions id))
          && State.pending_of !state ~computation:id = []
        then record_finish id (Time.succ t))
      (Hashtbl.copy running);
    (* ... and deadline kills, recording the work still owed. *)
    let pending_remainder cid =
      List.concat_map
        (fun (p : State.pending) ->
          List.concat_map
            (fun step ->
              List.map
                (fun (a : Requirement.amount) ->
                  (a.Requirement.ltype, a.Requirement.quantity))
                step)
            p.State.steps)
        (State.pending_of !state ~computation:cid)
    in
    Hashtbl.iter
      (fun id () ->
        match Hashtbl.find_opt outcomes id with
        | Some o when o.deadline <= Time.succ t ->
            let unfinished =
              match Hashtbl.find_opt active_sessions id with
              | Some rt ->
                  (* Released segments owe their pending remainder; segments
                     never released owe their whole requirement. *)
                  let from_released =
                    List.concat_map
                      (fun nid -> pending_remainder (segment_cid id nid))
                      rt.Srt.released
                  in
                  let from_unreleased =
                    List.concat_map
                      (fun (n : Precedence.node) ->
                        if List.mem n.Precedence.id rt.Srt.released then []
                        else Requirement.demand_complex n.Precedence.requirement)
                      rt.Srt.nodes
                  in
                  from_released @ from_unreleased
              | None -> pending_remainder id
            in
            Hashtbl.replace outcomes id { o with unfinished };
            let owed =
              List.fold_left (fun acc (_, q) -> acc + q) 0 unfinished
            in
            Rota_obs.Metrics.incr m_kills;
            Rota_obs.Metrics.add m_owed owed;
            notify (Killed { id; at = Time.succ t; owed });
            (match Hashtbl.find_opt active_sessions id with
            | Some rt ->
                List.iter
                  (fun nid ->
                    state := State.drop !state ~computation:(segment_cid id nid))
                  rt.Srt.released;
                Hashtbl.remove active_sessions id
            | None -> state := State.drop !state ~computation:id);
            Hashtbl.remove running id;
            admission := Admission.complete !admission ~computation:id
        | Some _ | None -> ())
      (Hashtbl.copy running);
    state := State.tick !state;
    admission := Admission.advance !admission (Time.succ t)
  done;

  let outcomes_list =
    List.rev_map (fun id -> Hashtbl.find outcomes id) !arrival_order
  in
  let count f = List.length (List.filter f outcomes_list) in
  let type_stats =
    Hashtbl.fold (fun xi capacity acc -> (xi, capacity) :: acc) per_type_capacity []
    |> List.sort (fun (a, _) (b, _) -> Located_type.compare a b)
    |> List.map (fun (ltype, capacity) ->
           {
             ltype;
             capacity;
             consumed =
               Option.value (Hashtbl.find_opt per_type_consumed ltype) ~default:0;
           })
  in
  {
    policy;
    dispatch_used;
    horizon;
    offered = !offered;
    admitted = count (fun o -> o.admitted);
    rejected = count (fun o -> not o.admitted);
    completed_on_time = count on_time;
    missed_deadlines = count missed;
    capacity_total = !capacity_total;
    consumed_total = !consumed_total;
    type_stats;
    outcomes = outcomes_list;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%-16s %-11s offered=%3d admitted=%3d rejected=%3d on-time=%3d missed=%3d util=%.2f goodput=%.2f"
    (Admission.policy_name r.policy)
    (match r.dispatch_used with
    | Reservation -> "reservation"
    | Shared -> "shared"
    | Auto -> "auto")
    r.offered r.admitted r.rejected r.completed_on_time r.missed_deadlines
    (utilization r) (goodput r)

let pp_type_stats ppf r =
  List.iter
    (fun s ->
      let util =
        if s.capacity <= 0 then 0.
        else float_of_int s.consumed /. float_of_int s.capacity
      in
      Format.fprintf ppf "%-24s capacity=%6d consumed=%6d util=%.2f@."
        (Format.asprintf "%a" Located_type.pp s.ltype)
        s.capacity s.consumed util)
    r.type_stats
