open Import

(** Discrete-event execution of an open distributed system.

    The engine replays a {!Trace} — resources joining, computations
    arriving — under an admission policy, actually {e executes} the
    admitted computations tick by tick, and reports who finished by their
    deadline.  It is the ground truth the reasoning layer is judged
    against: ROTA's claim is that everything it admits finishes on time.

    Two dispatch modes:

    - {b Reservation}: each admitted computation consumes exactly what its
      committed schedule reserved, tick by tick.  Only meaningful for the
      Rota policies (the others book no reservations).
    - {b Shared}: processor-sharing — each tick, each resource type's rate
      is split evenly among the actors whose current step wants it (the
      remainder going to the earliest deadlines).  This is how a system
      without reservations behaves, and is what the baseline policies are
      executed under. *)

type dispatch = Auto | Reservation | Shared
(** [Auto] picks [Reservation] for Rota-family policies and [Shared]
    otherwise. *)

(** Run-time notifications, for observability: the engine reports each
    admission decision, completion, deadline kill and capacity join as it
    happens (in simulated-time order).

    Every event is also delivered to the {!Rota_obs.Tracer} sink, if one
    is installed, as a typed {!Rota_obs.Events.payload} carrying both
    simulated and wall time — [run ~observer] remains for in-process
    consumers, the sink is for export (JSONL files, consoles). *)
type event =
  | Capacity_joined of { at : Time.t; quantity : int }
  | Admitted of { id : string; at : Time.t; reason : string }
  | Rejected of { id : string; at : Time.t; reason : string }
  | Completed of { id : string; at : Time.t }
  | Killed of { id : string; at : Time.t; owed : int }
      (** Deadline kill; [owed] is the total quantity still unfinished. *)

val event_time : event -> Time.t
(** The simulated time the event happened at. *)

val payload_of_event : policy:string -> event -> Rota_obs.Events.payload
(** The telemetry-layer rendering of an engine event; [policy] labels
    the admission decisions. *)

val pp_event : Format.formatter -> event -> unit
(** Renders via {!Rota_obs.Events.pp_payload}, so the engine and every
    sink print one event the same way. *)

type outcome = {
  computation : string;
  arrived : Time.t;
  deadline : Time.t;
  admitted : bool;
  reject_reason : string option;  (** When not admitted. *)
  finished : Time.t option;
      (** Tick by which the computation had drained, when it did. *)
  unfinished : (Located_type.t * int) list;
      (** Work still owed when the deadline killed it (empty when it
          finished or was rejected).  Consumed + unfinished is the {e
          true} demand — the signal {!Calibration} uses. *)
  faulted : bool;
      (** A fault touched this computation's commitment (revoked its
          reservation, or inflated its work).  [faulted && on_time] means
          the repair ladder rescued it. *)
}

val on_time : outcome -> bool
(** Admitted, finished, and finished by the deadline. *)

val missed : outcome -> bool
(** Admitted but not finished by the deadline. *)

type type_stat = {
  ltype : Located_type.t;
  capacity : int;  (** Quantity offered within the run. *)
  consumed : int;  (** Quantity actually consumed. *)
}

(** What the fault plan did to the run, and what the repair ladder got
    back.  All zeros when no faults were injected. *)
type fault_stats = {
  injected : int;  (** Faults delivered (all kinds). *)
  revoked_quantity : int;
      (** Capacity quantity actually lost to revocations and blackouts
          (after clipping), within the horizon. *)
  commitments_revoked : int;
      (** Calendar entries evicted because their reservation no longer
          fit the shrunk capacity. *)
  degraded : int;  (** Computations whose work a slowdown inflated. *)
  reaccommodated : int;  (** Rescues on rung 1 (residual re-check). *)
  migrated : int;  (** Rescues on rung 2 (replanned at another site). *)
  retries : int;  (** Backoff retries scheduled (rung 3). *)
  retry_successes : int;  (** Rescues that needed at least one retry. *)
  preempted : int;  (** Victims the ladder gave up on (rung 4). *)
  work_saved : int;
      (** Quantity already consumed by fault-affected computations that
          still finished on time — work repair kept from being thrown
          away at a deadline kill. *)
}

val no_faults : fault_stats
(** The all-zero record — what a fault-free run reports. *)

type report = {
  policy : Admission.policy;
  dispatch_used : dispatch;  (** [Reservation] or [Shared], never [Auto]. *)
  horizon : Time.t;
  offered : int;
  admitted : int;
  rejected : int;
  completed_on_time : int;
  missed_deadlines : int;
  capacity_total : int;
      (** Total resource quantity offered within the run. *)
  consumed_total : int;  (** Total quantity actually consumed. *)
  type_stats : type_stat list;
      (** Per-type capacity/consumption breakdown, in type order. *)
  outcomes : outcome list;  (** In arrival order. *)
  faults : fault_stats;
  anomalies : (Time.t * string) list;
      (** Internal inconsistencies the engine survived by degrading
          (each also emitted as an [anomaly] telemetry event); empty on
          a healthy run. *)
  watchdog : Rota_audit.Watchdog.stats option;
      (** What the live audit watchdog verified {e during this run} —
          the stats delta of the installed {!Rota_audit.Watchdog}, or
          [None] when no watchdog was riding the run. *)
}

val utilization : report -> float
(** [consumed_total / capacity_total] (0 when no capacity). *)

val goodput : report -> float
(** Fraction of offered computations that completed on time. *)

val run :
  ?cost_model:Cost_model.t ->
  ?true_cost_model:Cost_model.t ->
  ?dispatch:dispatch ->
  ?observer:(event -> unit) ->
  ?faults:Fault.plan ->
  ?repair:bool ->
  policy:Admission.policy ->
  Trace.t ->
  report
(** Replays the trace to its horizon.

    [cost_model] is what the {e reasoning} believes (admission prices
    requirements with it); [true_cost_model] (default: the same) is what
    execution {e actually} costs.  When they differ — the paper's
    "estimates could be used and revised as necessary" — even ROTA
    reservations can fall short and deadlines can be missed; see
    {!Calibration} for closing the gap.

    [faults] (default none) is a plan of unannounced failures delivered
    tick by tick, after the trace's declared events and before dispatch;
    an empty plan leaves the run byte-identical to one without the
    parameter.  [repair] (default [true]) enables the
    {!Rota_scheduler.Repair} ladder for commitments the faults break —
    only meaningful under a Rota-family policy with reservation dispatch
    (the baselines hold no commitments to repair).  Faults touch only
    affected commitments: survivors keep their exact reservations
    (Theorem 4 non-interference, tested as a qcheck invariant). *)

val pp_report : Format.formatter -> report -> unit
(** A one-line summary row. *)

val pp_type_stats : Format.formatter -> report -> unit
(** One line per resource type: capacity, consumed, utilization. *)
