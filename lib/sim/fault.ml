open Import

type kind =
  | Revoke of Resource_set.t
  | Blackout of { location : Location.t; until : Time.t }
  | Slowdown of { computation : string; factor : int }
  | Rejoin of Resource_set.t

type t = { at : Time.t; kind : kind }

type plan = t list

let kind_name = function
  | Revoke _ -> "revocation"
  | Blackout _ -> "blackout"
  | Slowdown _ -> "slowdown"
  | Rejoin _ -> "rejoin"

let sort plan =
  (* Stable, so same-tick faults keep plan order (duplicate churn events
     stay adjacent and deterministic). *)
  List.stable_sort (fun a b -> Time.compare a.at b.at) plan

let pp_kind ppf = function
  | Revoke slice ->
      Format.fprintf ppf "revoke %a" Resource_set.pp slice
  | Blackout { location; until } ->
      Format.fprintf ppf "blackout %a until %a" Location.pp location Time.pp
        until
  | Slowdown { computation; factor } ->
      Format.fprintf ppf "slowdown %s x%d" computation factor
  | Rejoin slice -> Format.fprintf ppf "rejoin %a" Resource_set.pp slice

let pp ppf f = Format.fprintf ppf "@[%a: %a@]" Time.pp f.at pp_kind f.kind
