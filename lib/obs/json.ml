type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep a trailing ".0"-free integral rendering parseable as Float by
       forcing an exponent-less decimal point. *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Fail (Printf.sprintf "at %d: %s" !pos msg)) in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n'
                   || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape"
                   else begin
                     let code =
                       try int_of_string ("0x" ^ String.sub s !pos 4)
                       with _ -> fail "bad \\u escape"
                     in
                     pos := !pos + 4;
                     (* Encode the code point as UTF-8 (BMP only, which is
                        all this layer ever emits). *)
                     if code < 0x80 then Buffer.add_char buf (Char.chr code)
                     else if code < 0x800 then begin
                       Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                       Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                     end
                     else begin
                       Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                       Buffer.add_char buf
                         (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                       Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                     end
                   end
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && is_number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected int, got %s" (to_string v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected float, got %s" (to_string v))

let to_str = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, got %s" (to_string v))
