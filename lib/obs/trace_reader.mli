(** Streaming JSONL trace reader and validator — the consume side of the
    telemetry layer.

    Traces are read a line at a time, so a multi-gigabyte trace never
    has to fit in memory ({!fold_file}); {!read_file} is the convenience
    wrapper for workloads that do fit.  Blank lines are tolerated. *)

type error = { line : int; message : string }
(** [line] is 1-based; 0 means the file itself could not be opened. *)

val pp_error : Format.formatter -> error -> unit

val fold_file :
  ?strict:bool -> string -> init:'a -> f:('a -> Events.t -> 'a) -> ('a, error) result
(** Fold [f] over every event in the file, in file order, stopping at
    the first malformed line.  [strict] is {!Events.of_line}'s flag
    (default lenient: unknown kinds become {!Events.Unknown}). *)

val read_file : ?strict:bool -> string -> (Events.t list, error) result
(** All events, in file order. *)

(** {1 Validation}

    The trace contract, checked by [rota trace validate]:
    every line parses strictly (no unknown kinds) and round-trips
    through the codec; [seq] is strictly increasing across the file;
    within each run the non-span simulated times are nondecreasing;
    nonzero span ids are unique and every span's [parent] id resolves
    to a span in the file. *)

type validation = {
  events : int;  (** Events successfully parsed. *)
  runs : int;  (** [run-started] records seen. *)
  errors : string list;  (** Human-readable violations; empty = valid. *)
}

val valid : validation -> bool

val validate_file : ?max_errors:int -> string -> validation
(** Check the whole file, never raising: unreadable files and malformed
    lines are reported as errors.  At most [max_errors] (default 20)
    messages are kept, with a final count of any suppressed beyond
    that. *)
