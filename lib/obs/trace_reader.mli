(** Streaming trace reader and validator — the consume side of the
    telemetry layer.

    Traces are read a line at a time, so a multi-gigabyte trace never
    has to fit in memory ({!fold_file}); {!read_file} is the convenience
    wrapper for workloads that do fit.  Blank lines are tolerated, and a
    crash-interrupted trace (final line cut mid-write, no trailing
    newline) yields everything up to the cut plus a structured
    {!Truncated} note rather than a parse error.  {!Follow} tails a
    trace that is still being written.

    Both wire formats are accepted transparently: a file starting with
    the {!Binary.magic} bytes is read through the binary codec, with
    1-based {e record} ordinals standing in for line numbers and a
    crash-cut final record reported as the {!Truncated} tail, exactly
    like a JSONL line missing its newline.  {!Follow} tails both
    formats too: a binary cursor delivers each record as its last byte
    lands, buffering (by seek) a record cut mid-write. *)

type error = { line : int; message : string }
(** [line] is 1-based; 0 means the file itself could not be opened. *)

val pp_error : Format.formatter -> error -> unit

(** How the file ended.  [Truncated] means the final line lacked its
    newline and did not parse — a write cut short by a crash; [bytes]
    is the length of the dangling fragment.  Every complete line before
    it was still delivered.  A {e terminated} malformed line (final or
    not) is an {!error}, not a truncation: its writer finished it that
    way. *)
type tail = Complete | Truncated of { line : int; bytes : int }

val pp_tail : Format.formatter -> tail -> unit

val fold_file :
  ?strict:bool ->
  string ->
  init:'a ->
  f:('a -> Events.t -> 'a) ->
  ('a * tail, error) result
(** Fold [f] over every event in the file, in file order, stopping at
    the first malformed line.  [strict] is {!Events.of_line}'s flag
    (default lenient: unknown kinds become {!Events.Unknown}).  An
    unterminated final line is parsed if possible (losing nothing) and
    otherwise reported as the [tail]. *)

val read_file :
  ?strict:bool -> string -> (Events.t list * tail, error) result
(** All events, in file order. *)

(** {1 Following a growing trace}

    The primitive behind [rota audit --follow]: an incremental cursor
    over a file another process is appending to. *)

module Follow : sig
  type cursor

  val open_file : ?strict:bool -> string -> (cursor, error) result
  (** Open [path] for tailing, positioned at the start.  [strict] as in
      {!fold_file}.  Both wire formats are accepted: the ROTB magic
      selects the binary record reader, anything else is tailed as
      JSONL.  A file still shorter than the binary header (a writer
      caught mid-open, or an empty file about to grow) stays
      format-undetected until enough bytes land to tell. *)

  val poll : cursor -> (Events.t list, error) result
  (** Every event whose line (JSONL) or length-prefixed record (binary)
      has been {e completed} since the last poll, in file order; [[]]
      when nothing new arrived.  A partial final line or record is
      buffered, never parsed — it resumes when its remaining bytes
      land, so polling mid-write cannot misread a fragment.  A
      malformed complete line or record is an error and the cursor
      should be abandoned. *)

  val pending_bytes : cursor -> int
  (** Bytes of the unterminated final line (JSONL) or cut final record
      (binary) currently buffered — nonzero while the writer is
      mid-write (or crashed there). *)

  val close : cursor -> unit
end

(** {1 Validation}

    The trace contract, checked by [rota trace validate]:
    every line parses strictly (no unknown kinds) and round-trips
    through the codec — the {e same} codec the file was written with,
    so a binary trace is checked against the binary round-trip; [seq]
    is strictly increasing across the file;
    within each run the non-span simulated times are nondecreasing;
    nonzero span ids are unique and every span's [parent] id resolves
    to a span in the file.  A truncated final line is reported as a
    violation (the trace is crash-cut, even though {!fold_file} can
    still use it). *)

type validation = {
  events : int;  (** Events successfully parsed. *)
  runs : int;  (** [run-started] records seen. *)
  errors : string list;  (** Human-readable violations; empty = valid. *)
}

val valid : validation -> bool

val validate_file : ?max_errors:int -> string -> validation
(** Check the whole file, never raising: unreadable files and malformed
    lines are reported as errors.  At most [max_errors] (default 20)
    messages are kept, with a final count of any suppressed beyond
    that. *)
