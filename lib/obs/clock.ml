let wall_s () = Unix.gettimeofday ()

let origin = wall_s ()

let elapsed_s () = wall_s () -. origin
