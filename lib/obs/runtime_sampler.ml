(* The engine's own resource footprint, folded into the metrics
   registry so the periodic sampler sweeps it into the trace alongside
   the admission series.

   Handles are registered lazily on the first [update] — a process that
   never samples never grows runtime/* rows in its metrics tables. *)

type handles = {
  c_minor_words : Metrics.counter;
  c_major_words : Metrics.counter;
  c_promoted_words : Metrics.counter;
  c_minor_collections : Metrics.counter;
  c_major_collections : Metrics.counter;
  c_compactions : Metrics.counter;
  g_heap_words : Metrics.gauge;
  g_top_heap_words : Metrics.gauge;
  g_wall_us_per_tick : Metrics.gauge;
}

let handles =
  lazy
    {
      c_minor_words = Metrics.counter "runtime/minor_words";
      c_major_words = Metrics.counter "runtime/major_words";
      c_promoted_words = Metrics.counter "runtime/promoted_words";
      c_minor_collections = Metrics.counter "runtime/minor_collections";
      c_major_collections = Metrics.counter "runtime/major_collections";
      c_compactions = Metrics.counter "runtime/compactions";
      g_heap_words = Metrics.gauge "runtime/heap_words";
      g_top_heap_words = Metrics.gauge "runtime/top_heap_words";
      g_wall_us_per_tick = Metrics.gauge "runtime/wall_us_per_tick";
    }

type baseline = {
  b_stat : Gc.stat;
  b_wall : float;
  b_sim : int option;
}

let last : baseline option ref = ref None

let reset () = last := None

(* Allocation totals are floats of words; the registry counts ints.
   Truncation loses less than a word per sample, which is noise next to
   the 10^5-word-per-tick signal. *)
let words f = int_of_float f

let update ?sim () =
  if Metrics.enabled () then begin
    let h = Lazy.force handles in
    let q = Gc.quick_stat () in
    let wall = Clock.wall_s () in
    (match !last with
    | None -> ()
    | Some b ->
        let d f = f q -. f b.b_stat in
        Metrics.add h.c_minor_words (words (d (fun s -> s.Gc.minor_words)));
        Metrics.add h.c_major_words (words (d (fun s -> s.Gc.major_words)));
        Metrics.add h.c_promoted_words
          (words (d (fun s -> s.Gc.promoted_words)));
        Metrics.add h.c_minor_collections
          (q.Gc.minor_collections - b.b_stat.Gc.minor_collections);
        Metrics.add h.c_major_collections
          (q.Gc.major_collections - b.b_stat.Gc.major_collections);
        Metrics.add h.c_compactions (q.Gc.compactions - b.b_stat.Gc.compactions);
        (* Wall-vs-sim drift: wall-clock microseconds burned per
           simulated tick since the previous sample.  Needs two samples
           with advancing simulated time; otherwise the gauge keeps its
           last value. *)
        (match (sim, b.b_sim) with
        | Some t1, Some t0 when t1 > t0 ->
            Metrics.set h.g_wall_us_per_tick
              (int_of_float (1e6 *. (wall -. b.b_wall) /. float_of_int (t1 - t0)))
        | _ -> ()));
    Metrics.set h.g_heap_words q.Gc.heap_words;
    Metrics.set h.g_top_heap_words q.Gc.top_heap_words;
    last := Some { b_stat = q; b_wall = wall; b_sim = sim }
  end
