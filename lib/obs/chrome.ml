(* Chrome trace-event JSON (array form), loadable in Perfetto and
   chrome://tracing.  Mapping:

   - each engine run becomes a "process" (pid = run id), named by its
     run-started label;
   - spans become complete ("X") slices on tid 1, positioned by their
     begin timestamp and duration, with the id/parent linkage and depth
     carried in args — nesting on the track follows from parent slices
     enclosing their children in time;
   - instantaneous engine events (admitted, killed, ...) become instant
     ("i") marks on tid 2, with the simulated time and payload fields
     in args;
   - metric samples become counter ("C") events, one counter track per
     metric name.

   Timestamps are microseconds relative to the earliest event, so the
   viewport opens at t=0. *)

let span_tid = 1
let event_tid = 2

let origin_of events =
  List.fold_left
    (fun acc (e : Events.t) ->
      let t =
        match e.Events.payload with
        | Events.Span { begin_s; _ } -> begin_s
        | _ -> e.Events.wall_s
      in
      Float.min acc t)
    infinity events

let export events =
  let origin = origin_of events in
  let origin = if Float.is_finite origin then origin else 0. in
  let us t = Json.Float ((t -. origin) *. 1e6) in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  let meta ~pid ~name ?tid what =
    push
      (Json.Obj
         ([ ("name", Json.String what); ("ph", Json.String "M");
            ("pid", Json.Int pid) ]
         @ (match tid with Some t -> [ ("tid", Json.Int t) ] | None -> [])
         @ [ ("args", Json.Obj [ ("name", Json.String name) ]) ]))
  in
  let instant (e : Events.t) name args =
    let args =
      match e.Events.sim with
      | Some t -> ("sim", Json.Int t) :: args
      | None -> args
    in
    push
      (Json.Obj
         [
           ("name", Json.String name);
           ("ph", Json.String "i");
           ("s", Json.String "t");
           ("pid", Json.Int e.Events.run);
           ("tid", Json.Int event_tid);
           ("ts", us e.Events.wall_s);
           ("args", Json.Obj args);
         ])
  in
  List.iter
    (fun (e : Events.t) ->
      let run = e.Events.run in
      match e.Events.payload with
      | Events.Run_started { label } ->
          meta ~pid:run ~name:(Printf.sprintf "run %d: %s" run label)
            "process_name";
          meta ~pid:run ~tid:span_tid ~name:"spans" "thread_name";
          meta ~pid:run ~tid:event_tid ~name:"engine events" "thread_name";
          instant e "run-started" [ ("label", Json.String label) ]
      | Events.Span { name; id; parent; depth; begin_s; duration_s } ->
          push
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("ph", Json.String "X");
                 ("pid", Json.Int run);
                 ("tid", Json.Int span_tid);
                 ("ts", us begin_s);
                 ("dur", Json.Float (duration_s *. 1e6));
                 ( "args",
                   Json.Obj
                     [
                       ("id", Json.Int id);
                       ( "parent",
                         match parent with
                         | Some p -> Json.Int p
                         | None -> Json.Null );
                       ("depth", Json.Int depth);
                     ] );
               ])
      | Events.Metric_sample { name; value; family = _ } ->
          push
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("ph", Json.String "C");
                 ("pid", Json.Int run);
                 ("ts", us e.Events.wall_s);
                 ("args", Json.Obj [ ("value", Json.Float value) ]);
               ])
      (* Quantile snapshots export as counter tracks too — one series
         per quantile keeps them overlayable in the viewer. *)
      | Events.Hist_sample { name; p50; p95; p99; _ } ->
          push
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("ph", Json.String "C");
                 ("pid", Json.Int run);
                 ("ts", us e.Events.wall_s);
                 ( "args",
                   Json.Obj
                     [
                       ("p50", Json.Float p50);
                       ("p95", Json.Float p95);
                       ("p99", Json.Float p99);
                     ] );
               ])
      | Events.Capacity_joined { quantity; terms = _ } ->
          instant e "capacity-joined" [ ("quantity", Json.Int quantity) ]
      | Events.Decision { id; policy; action; slug; certificate = _; cid = _ }
        ->
          (* The certificate is structured evidence for the auditor, not
             a mark annotation: exporting it verbatim would bloat the
             viewer args without rendering usefully. *)
          instant e
            (Printf.sprintf "decision %s %s" action id)
            [ ("policy", Json.String policy); ("slug", Json.String slug) ]
      | Events.Admitted { id; policy; reason } ->
          instant e
            (Printf.sprintf "admitted %s" id)
            [ ("policy", Json.String policy); ("reason", Json.String reason) ]
      | Events.Rejected { id; policy; reason } ->
          instant e
            (Printf.sprintf "rejected %s" id)
            [ ("policy", Json.String policy); ("reason", Json.String reason) ]
      | Events.Shed { id; slug; reason } ->
          instant e
            (Printf.sprintf "shed %s" id)
            [ ("slug", Json.String slug); ("reason", Json.String reason) ]
      | Events.Completed { id } ->
          instant e (Printf.sprintf "completed %s" id) []
      | Events.Killed { id; owed } ->
          instant e (Printf.sprintf "killed %s" id) [ ("owed", Json.Int owed) ]
      | Events.Fault_injected { fault; quantity; terms = _ } ->
          instant e
            (Printf.sprintf "fault %s" fault)
            [ ("quantity", Json.Int quantity) ]
      | ( Events.Commitment_revoked { id; _ }
        | Events.Commitment_degraded { id; _ }
        | Events.Repaired { id; _ }
        | Events.Preempted { id; _ }
        | Events.Anomaly { id; _ }
        | Events.Audit_divergence { id; _ } ) as p ->
          instant e
            (Printf.sprintf "%s %s" (Events.kind p) id)
            (List.remove_assoc "id" (Events.payload_fields p))
      | Events.Unknown _ -> ())
    events;
  Json.List (List.rev !entries)

let to_string events = Json.to_string (export events)
