(** Process-global metrics registry: named counters, gauges, and
    fixed-bucket histograms.

    Instrumented code registers its handles once (usually at module
    initialisation) and then calls {!incr} / {!observe} on the hot path.
    Recording is {e off} by default: every mutation first reads one
    global flag and returns immediately when disabled, so instrumenting
    a hot path costs a single load-and-branch until somebody turns the
    registry on ([--metrics] in the CLI, or {!set_enabled} in code).

    Handles are interned by name — [counter "x"] called twice returns
    the same cell — so libraries and their callers can share a series
    without coordinating. *)

val set_enabled : bool -> unit
(** Turn recording on or off.  Registration is always allowed. *)

val enabled : unit -> bool
(** Whether mutations currently record.  Hot paths that want to avoid
    even a closure allocation can branch on this themselves. *)

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter : string -> counter
(** Find or create the counter named [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} — instantaneous integer levels (queue depths, live sets). *)

type gauge

val gauge : string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** {1 Histograms} — fixed upper-bound buckets plus an overflow bucket,
    with sum/min/max tracked exactly and quantiles estimated by linear
    interpolation inside the covering bucket. *)

type histogram

val default_buckets : float array
(** Log-spaced latency buckets in seconds, 100ns .. 10s. *)

val histogram : ?buckets:float array -> string -> histogram
(** Find or create.  [buckets] must be strictly ascending.  Raises
    [Invalid_argument] on an empty or unsorted bucket array, and also
    when [name] already exists and [buckets] is given but differs from
    the registered array — a silent mismatch would drop the caller's
    buckets and skew every later observation.  Omitting [buckets] always
    finds an existing histogram regardless of how it was bucketed. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration in seconds.  When
    recording is disabled this is exactly the thunk call. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
(** 0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: the estimated value below which a
    [q] fraction of observations fall.  Within a bucket the estimate
    interpolates linearly from the bucket's lower to upper bound, so a
    quantile landing exactly on a cumulative-count boundary returns the
    bucket's upper bound exactly.  Estimates are clamped to the observed
    min/max, and observations past the last bucket report the true
    maximum.  0 when empty. *)

(** {1 Registry} *)

type histogram_view = {
  hname : string;
  count : int;
  sum : float;
  mean : float;
  min_v : float;  (** 0 when empty *)
  max_v : float;  (** 0 when empty *)
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  bucket_counts : (float * int) list;
      (** Cumulative count per declared upper bound, ascending.  The
          implicit +Inf bucket is [count]; the overflow cell is the
          difference with the last listed entry. *)
}

type view = {
  counters : (string * int) list;  (** Sorted by name. *)
  gauges : (string * int) list;  (** Sorted by name. *)
  histograms : histogram_view list;  (** Sorted by name. *)
}

val snapshot : unit -> view
(** Current values of everything registered (including zeros). *)

val reset : unit -> unit
(** Zero every registered series (registrations and handles survive, and
    stay valid).  Does not change the enabled flag. *)
