type t = {
  budget : float;
  horizon_s : int;
  (* One bucket per second, keyed by [sec mod horizon_s]; [stamp] holds
     the absolute second the bucket currently counts, so stale buckets
     are recognized lazily instead of being swept by a timer. *)
  stamp : int array;
  good : int array;
  bad : int array;
}

let create ?(budget = 0.01) ?(horizon_s = 3600) () =
  if budget <= 0. then invalid_arg "Slo.create: budget";
  if horizon_s < 1 then invalid_arg "Slo.create: horizon_s";
  {
    budget;
    horizon_s;
    stamp = Array.make horizon_s min_int;
    good = Array.make horizon_s 0;
    bad = Array.make horizon_s 0;
  }

let budget t = t.budget

let slot t sec = ((sec mod t.horizon_s) + t.horizon_s) mod t.horizon_s

let record t ~now ~good =
  let sec = int_of_float (Float.floor now) in
  let i = slot t sec in
  if t.stamp.(i) <> sec then begin
    (* A bucket a full horizon old would alias this second; refuse to
       resurrect it for an observation older than every live bucket. *)
    t.stamp.(i) <- sec;
    t.good.(i) <- 0;
    t.bad.(i) <- 0
  end;
  if good then t.good.(i) <- t.good.(i) + 1 else t.bad.(i) <- t.bad.(i) + 1

let totals t ~now ~window_s =
  let sec = int_of_float (Float.floor now) in
  let window_s = max 1 (min window_s t.horizon_s) in
  let lo = sec - window_s + 1 in
  let g = ref 0 and b = ref 0 in
  for s = lo to sec do
    let i = slot t s in
    if t.stamp.(i) = s then begin
      g := !g + t.good.(i);
      b := !b + t.bad.(i)
    end
  done;
  (!g, !b)

let burn t ~now ~window_s =
  let g, b = totals t ~now ~window_s in
  let total = g + b in
  if total = 0 then 0.
  else float_of_int b /. float_of_int total /. t.budget
