let on = ref false

let set_enabled b = on := b
let enabled () = !on

(* --- counters ----------------------------------------------------------- *)

type counter = { c_name : string; mutable count : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_name = name; count = 0 } in
      Hashtbl.replace counters name c;
      c

let incr c = if !on then c.count <- c.count + 1
let add c n = if !on then c.count <- c.count + n
let counter_value c = c.count

(* --- gauges ------------------------------------------------------------- *)

type gauge = { g_name : string; mutable level : int }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; level = 0 } in
      Hashtbl.replace gauges name g;
      g

let set g v = if !on then g.level <- v
let gauge_value g = g.level

(* --- histograms --------------------------------------------------------- *)

type histogram = {
  h_name : string;
  buckets : float array;  (* strictly ascending upper bounds *)
  cells : int array;  (* length = Array.length buckets + 1 (overflow) *)
  mutable total : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let default_buckets =
  [|
    1e-7; 2.5e-7; 5e-7; 1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4;
    2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5;
    1.; 2.5; 5.; 10.;
  |]

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram ?buckets name =
  match Hashtbl.find_opt histograms name with
  | Some h ->
      (match buckets with
      | Some b when b <> h.buckets ->
          invalid_arg
            (Printf.sprintf
               "Metrics.histogram: %S re-registered with different buckets"
               name)
      | Some _ | None -> ());
      h
  | None ->
      let buckets = Option.value buckets ~default:default_buckets in
      if Array.length buckets = 0 then
        invalid_arg "Metrics.histogram: empty bucket array";
      Array.iteri
        (fun i b ->
          if i > 0 && buckets.(i - 1) >= b then
            invalid_arg "Metrics.histogram: buckets must be strictly ascending")
        buckets;
      let h =
        {
          h_name = name;
          buckets = Array.copy buckets;
          cells = Array.make (Array.length buckets + 1) 0;
          total = 0;
          sum = 0.;
          min_seen = infinity;
          max_seen = neg_infinity;
        }
      in
      Hashtbl.replace histograms name h;
      h

let bucket_index h v =
  (* First bucket whose upper bound covers [v]; the overflow cell
     otherwise.  Linear scan: bucket arrays are small and the scan only
     runs when recording is on. *)
  let n = Array.length h.buckets in
  let rec find i = if i >= n then n else if v <= h.buckets.(i) then i else find (i + 1) in
  find 0

let observe h v =
  if !on then begin
    let i = bucket_index h v in
    h.cells.(i) <- h.cells.(i) + 1;
    h.total <- h.total + 1;
    h.sum <- h.sum +. v;
    if v < h.min_seen then h.min_seen <- v;
    if v > h.max_seen then h.max_seen <- v
  end

let time h f =
  if not !on then f ()
  else begin
    let t0 = Clock.wall_s () in
    let finally () = observe h (Clock.wall_s () -. t0) in
    Fun.protect ~finally f
  end

let hist_count h = h.total
let hist_sum h = h.sum
let hist_mean h = if h.total = 0 then 0. else h.sum /. float_of_int h.total

let quantile h q =
  if h.total = 0 then 0.
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank = q *. float_of_int h.total in
    let n = Array.length h.buckets in
    let rec walk i cum =
      if i > n then h.max_seen
      else
        let here = h.cells.(i) in
        let cum' = cum + here in
        if float_of_int cum' >= rank && here > 0 then
          if i = n then h.max_seen
          else
            let lo = if i = 0 then 0. else h.buckets.(i - 1) in
            let hi = h.buckets.(i) in
            lo +. ((hi -. lo) *. ((rank -. float_of_int cum) /. float_of_int here))
        else walk (i + 1) cum'
    in
    (* rank 0 (q = 0) means "below everything": report the true minimum.
       Estimates are clamped to the observed range so a sparse top bucket
       cannot report a quantile beyond the true maximum. *)
    if rank <= 0. then h.min_seen
    else Float.min (Float.max (walk 0 0) h.min_seen) h.max_seen
  end

(* --- registry ----------------------------------------------------------- *)

type histogram_view = {
  hname : string;
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  bucket_counts : (float * int) list;
}

let cumulative_buckets h =
  (* Cumulative counts per declared upper bound, exporter-style: the
     overflow cell is not listed — it is implied by [total] (the +Inf
     bucket). *)
  let cum = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i ub ->
         cum := !cum + h.cells.(i);
         (ub, !cum))
       h.buckets)

type view = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : histogram_view list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters =
    Hashtbl.fold
      (fun name (c : counter) acc -> (name, c.count) :: acc)
      counters []
    |> List.sort by_name
  in
  let gauges =
    Hashtbl.fold (fun name g acc -> (name, g.level) :: acc) gauges []
    |> List.sort by_name
  in
  let histograms =
    Hashtbl.fold
      (fun name h acc ->
        ( name,
          {
            hname = name;
            count = h.total;
            sum = h.sum;
            mean = hist_mean h;
            min_v = (if h.total = 0 then 0. else h.min_seen);
            max_v = (if h.total = 0 then 0. else h.max_seen);
            p50 = quantile h 0.5;
            p90 = quantile h 0.9;
            p95 = quantile h 0.95;
            p99 = quantile h 0.99;
            bucket_counts = cumulative_buckets h;
          } )
        :: acc)
      histograms []
    |> List.sort by_name |> List.map snd
  in
  { counters; gauges; histograms }

let reset () =
  Hashtbl.iter (fun _ (c : counter) -> c.count <- 0) counters;
  Hashtbl.iter (fun _ g -> g.level <- 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.cells 0 (Array.length h.cells) 0;
      h.total <- 0;
      h.sum <- 0.;
      h.min_seen <- infinity;
      h.max_seen <- neg_infinity)
    histograms

(* The registry never reads these fields back except through snapshots;
   keep the names referenced so unused-field warnings stay quiet. *)
let _ = fun (c : counter) -> c.c_name
let _ = fun (g : gauge) -> g.g_name
let _ = fun (h : histogram) -> h.h_name
