(** Wall-clock timestamps for telemetry.

    Simulated time in this repository is the engine's tick counter; the
    telemetry layer additionally stamps every event and span with {e
    wall} time so that offline analysis can relate simulated progress to
    real cost.  [elapsed_s] is measured against a fixed process-start
    origin, which makes the values small, monotone under normal clock
    conditions, and diffable across a single run's JSONL file. *)

val wall_s : unit -> float
(** Seconds since the Unix epoch (sub-microsecond resolution). *)

val elapsed_s : unit -> float
(** Seconds since this process initialised the telemetry clock. *)
