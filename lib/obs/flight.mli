(** Crash flight recorder: a bounded in-memory ring of the most recent
    trace events, dumpable as a valid standalone ROTB file.

    The serve daemon tees every telemetry event through {!record}; each
    event is binary-encoded {e immediately} (so a later dump costs no
    encoding of live state and cannot fail on it) and the ring keeps the
    last [capacity] encoded records.  On a watchdog trip, a shed storm,
    a fatal error, or SIGQUIT, {!dump} writes them out as a file that
    [rota trace validate] accepts — the last seconds of the daemon's
    life, readable with every existing trace tool.

    To make an arbitrary suffix of a longer stream self-consistent, the
    ring restamps: events get fresh contiguous [seq] numbers at record
    time, and {!dump} drops span parent links that point outside the
    retained window (the parent record was evicted) and clamps any
    backward simulated-time step within a run (the run's earlier records
    may be gone, so monotonicity is re-established locally). *)

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity in events (default 4096).  Raises [Invalid_argument]
    when [capacity < 1]. *)

val record : t -> Events.t -> unit
(** Encode the event and append it to the ring, evicting the oldest
    record when full.  The stored copy gets the ring's own [seq]
    numbering; everything else is kept verbatim. *)

val recorded : t -> int
(** Events currently retained (at most the capacity). *)

val sink : t -> Sink.t
(** A {!Sink} view of the ring ([emit] = {!record}, [close] = no-op) —
    for composing with [Sink.tee]. *)

val dump : t -> string -> (int, string) result
(** Write the retained events to [path] as a complete binary trace
    (header + records), oldest first, atomically (temp file + rename).
    Returns the number of events written.  A valid — possibly empty —
    trace results even if the recorded stream was arbitrary. *)
