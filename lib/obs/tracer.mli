(** The process-global event stream: one installed {!Sink}, a sequence
    counter, a run counter, and a span stack.

    With no sink installed every operation is a cheap no-op — one load
    and branch for {!emit}, and {!with_span} is exactly the thunk call —
    so instrumented code can emit unconditionally. *)

val install : Sink.t -> unit
(** Make [sink] the destination.  Any previously installed sink is
    closed first. *)

val uninstall : unit -> unit
(** Close and remove the installed sink (no-op when none). *)

val active : unit -> bool
(** Whether a sink is installed. *)

val emit : ?sim:int -> Events.payload -> unit
(** Stamp (seq, run, wall time) and deliver to the sink, if any. *)

val new_run : ?sim:int -> string -> int
(** Start a new run scope: increments the run id, emits
    {!Events.Run_started} with [label], returns the new id.  The id
    advances even with no sink installed, so runs stay distinguishable
    if a sink is installed mid-process. *)

val run_id : unit -> int
(** The current run id (0 before the first {!new_run}). *)

val with_span : ?sim:int -> string -> (unit -> 'a) -> 'a
(** Time the thunk and emit a {!Events.Span} record when it finishes
    (also on exceptions).  Spans nest: each open span is assigned a
    fresh process-wide id at entry and records the id of the span it
    nests inside, so the record carries its nesting depth {e and} the
    [id]/[parent] linkage plus the begin timestamp. *)

val alloc_span_id : unit -> int
(** Reserve a fresh process-wide span id without opening a span — for
    callers that time a scope manually across asynchronous boundaries
    (the serve daemon's per-request span) and emit it via {!emit_span}.
    Advances even with no sink installed, like {!new_run}. *)

val emit_span :
  ?sim:int -> ?parent:int -> ?id:int -> name:string -> begin_s:float ->
  unit -> unit
(** Emit one {!Events.Span} record for a manually timed scope: duration
    is measured from [begin_s] to now.  [id] defaults to a fresh
    {!alloc_span_id}; [depth] is 0 without a [parent] and 1 with one
    (manual spans nest one level, they do not use the thread's span
    stack).  No-op without a sink. *)

val set_sample_period : int -> unit
(** Cadence, in simulated ticks, at which the engine emits
    {!Events.Metric_sample} / {!Events.Hist_sample} events for every
    registered series.  0 (the default) disables sampling.  Negative
    values clamp to 0. *)

val sample_period : unit -> int

val samples_of_view : Metrics.view -> Events.payload list
(** The sample payloads a registry snapshot expands to: one
    {!Events.Metric_sample} per counter and gauge (tagged with its
    family), then one {!Events.Hist_sample} per non-empty histogram.
    Pure — {!sample_metrics} emits exactly this list, and the serve
    daemon's [metrics] verb returns it over the wire. *)

val sample_metrics : ?sim:int -> unit -> unit
(** Emit one {!Events.Metric_sample} per registered counter and gauge
    (tagged with its family) at their current values, then one
    {!Events.Hist_sample} per non-empty histogram (count, sum, observed
    range, p50/p95/p99).  A no-op unless a sink is installed {e and}
    the metrics registry is enabled (disabled metrics would sample
    frozen zeros). *)

val reset : unit -> unit
(** Uninstall any sink and zero the sequence/run/depth/span-id counters
    and the sample period.  Test helper. *)
