(** The process-global event stream: one installed {!Sink}, a sequence
    counter, a run counter, and a span stack.

    With no sink installed every operation is a cheap no-op — one load
    and branch for {!emit}, and {!with_span} is exactly the thunk call —
    so instrumented code can emit unconditionally. *)

val install : Sink.t -> unit
(** Make [sink] the destination.  Any previously installed sink is
    closed first. *)

val uninstall : unit -> unit
(** Close and remove the installed sink (no-op when none). *)

val active : unit -> bool
(** Whether a sink is installed. *)

val emit : ?sim:int -> Events.payload -> unit
(** Stamp (seq, run, wall time) and deliver to the sink, if any. *)

val new_run : ?sim:int -> string -> int
(** Start a new run scope: increments the run id, emits
    {!Events.Run_started} with [label], returns the new id.  The id
    advances even with no sink installed, so runs stay distinguishable
    if a sink is installed mid-process. *)

val run_id : unit -> int
(** The current run id (0 before the first {!new_run}). *)

val with_span : ?sim:int -> string -> (unit -> 'a) -> 'a
(** Time the thunk and emit a {!Events.Span} record when it finishes
    (also on exceptions).  Spans nest: the record carries the nesting
    depth at entry. *)

val reset : unit -> unit
(** Uninstall any sink and zero the sequence/run/depth counters.  Test
    helper. *)
