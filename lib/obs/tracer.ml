let sink : Sink.t option ref = ref None
let seq = ref 0
let run = ref 0
let depth = ref 0
let next_span_id = ref 0
let open_spans : int list ref = ref []  (* innermost first *)
let period = ref 0

let uninstall () =
  match !sink with
  | Some s ->
      sink := None;
      s.Sink.close ()
  | None -> ()

let install s =
  uninstall ();
  sink := Some s

let active () = Option.is_some !sink

let emit ?sim payload =
  match !sink with
  | None -> ()
  | Some s ->
      incr seq;
      s.Sink.emit
        {
          Events.seq = !seq;
          run = !run;
          sim;
          wall_s = Clock.wall_s ();
          payload;
        }

let new_run ?sim label =
  incr run;
  emit ?sim (Events.Run_started { label });
  !run

let run_id () = !run

let with_span ?sim name f =
  match !sink with
  | None -> f ()
  | Some _ ->
      let d = !depth in
      let parent = match !open_spans with [] -> None | p :: _ -> Some p in
      incr next_span_id;
      let id = !next_span_id in
      depth := d + 1;
      open_spans := id :: !open_spans;
      let t0 = Clock.wall_s () in
      let finally () =
        depth := d;
        (open_spans :=
           match !open_spans with
           | s :: rest when s = id -> rest
           | stack -> stack);
        emit ?sim
          (Events.Span
             {
               name;
               id;
               parent;
               depth = d;
               begin_s = t0;
               duration_s = Clock.wall_s () -. t0;
             })
      in
      Fun.protect ~finally f

let alloc_span_id () =
  incr next_span_id;
  !next_span_id

let emit_span ?sim ?parent ?id ~name ~begin_s () =
  match !sink with
  | None -> ()
  | Some _ ->
      let id = match id with Some i -> i | None -> alloc_span_id () in
      let depth = match parent with None -> 0 | Some _ -> 1 in
      emit ?sim
        (Events.Span
           {
             name;
             id;
             parent;
             depth;
             begin_s;
             duration_s = Clock.wall_s () -. begin_s;
           })

let set_sample_period n = period := max 0 n
let sample_period () = !period

let samples_of_view (view : Metrics.view) =
  let scalar family (name, v) =
    Events.Metric_sample
      { name; value = float_of_int v; family = Some family }
  in
  List.concat
    [
      List.map (scalar "counter") view.Metrics.counters;
      List.map (scalar "gauge") view.Metrics.gauges;
      List.filter_map
        (fun (h : Metrics.histogram_view) ->
          if h.count = 0 then None
          else
            Some
              (Events.Hist_sample
                 {
                   name = h.hname;
                   count = h.count;
                   sum = h.sum;
                   min_v = h.min_v;
                   max_v = h.max_v;
                   p50 = h.p50;
                   p95 = h.p95;
                   p99 = h.p99;
                 }))
        view.Metrics.histograms;
    ]

let sample_metrics ?sim () =
  if active () && Metrics.enabled () then
    List.iter (emit ?sim) (samples_of_view (Metrics.snapshot ()))

let reset () =
  uninstall ();
  seq := 0;
  run := 0;
  depth := 0;
  next_span_id := 0;
  open_spans := [];
  period := 0
