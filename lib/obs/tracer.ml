let sink : Sink.t option ref = ref None
let seq = ref 0
let run = ref 0
let depth = ref 0

let uninstall () =
  match !sink with
  | Some s ->
      sink := None;
      s.Sink.close ()
  | None -> ()

let install s =
  uninstall ();
  sink := Some s

let active () = Option.is_some !sink

let emit ?sim payload =
  match !sink with
  | None -> ()
  | Some s ->
      incr seq;
      s.Sink.emit
        {
          Events.seq = !seq;
          run = !run;
          sim;
          wall_s = Clock.wall_s ();
          payload;
        }

let new_run ?sim label =
  incr run;
  emit ?sim (Events.Run_started { label });
  !run

let run_id () = !run

let with_span ?sim name f =
  match !sink with
  | None -> f ()
  | Some _ ->
      let d = !depth in
      depth := d + 1;
      let t0 = Clock.wall_s () in
      let finally () =
        depth := d;
        emit ?sim
          (Events.Span { name; depth = d; duration_s = Clock.wall_s () -. t0 })
      in
      Fun.protect ~finally f

let reset () =
  uninstall ();
  seq := 0;
  run := 0;
  depth := 0
