type t = {
  capacity : int;
  ring : string option array;  (* encoded records, one per slot *)
  mutable head : int;  (* next slot to write *)
  mutable count : int;
  mutable seq : int;  (* ring-local restamped sequence *)
  scratch : Buffer.t;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity";
  {
    capacity;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    seq = 0;
    scratch = Buffer.create 256;
  }

let record t ev =
  t.seq <- t.seq + 1;
  Buffer.clear t.scratch;
  Binary.encode t.scratch { ev with Events.seq = t.seq };
  t.ring.(t.head) <- Some (Buffer.contents t.scratch);
  t.head <- (t.head + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1

let recorded t = t.count

let sink t = { Sink.emit = (fun ev -> record t ev); close = (fun () -> ()) }

let events t =
  (* Oldest first: with a full ring the oldest slot is [head]. *)
  let start = (t.head - t.count + t.capacity) mod t.capacity in
  let out = ref [] in
  for i = t.count - 1 downto 0 do
    match t.ring.((start + i) mod t.capacity) with
    | None -> ()
    | Some s -> (
        match Binary.decode_string s ~pos:0 with
        | Ok (ev, _) -> out := ev :: !out
        | Error _ -> ())
  done;
  !out

let repair evs =
  (* Make the retained suffix self-consistent: a span whose parent was
     evicted becomes a root, and a run whose earlier records are gone
     may open on a later simulated time than a surviving straggler —
     clamp sim forward so per-run monotonicity holds again. *)
  let span_ids = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev.Events.payload with
      | Events.Span { id; _ } when id <> 0 -> Hashtbl.replace span_ids id ()
      | _ -> ())
    evs;
  let run_max : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun ev ->
      let ev =
        match ev.Events.payload with
        | Events.Span ({ parent = Some p; _ } as s)
          when not (Hashtbl.mem span_ids p) ->
            { ev with Events.payload = Events.Span { s with parent = None } }
        | _ -> ev
      in
      match (ev.Events.payload, ev.Events.sim) with
      | Events.Span _, _ | _, None -> ev
      | _, Some sim ->
          let floor_sim =
            Option.value ~default:min_int
              (Hashtbl.find_opt run_max ev.Events.run)
          in
          let sim = max sim floor_sim in
          Hashtbl.replace run_max ev.Events.run sim;
          { ev with Events.sim = Some sim })
    evs

let dump t path =
  let evs = repair (events t) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf Binary.header;
  List.iter (Binary.encode buf) evs;
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Buffer.output_buffer oc buf);
    Sys.rename tmp path
  with
  | () -> Ok (List.length evs)
  | exception Sys_error msg -> Error msg
