(* One row per computation, one column per slice of simulated time:

     run 1: engine policy=rota dispatch=reservation horizon=40
       sim      0         10        20        30
                |---------|---------|---------|---------
       capacity +
       c1       A==C
       c2       x

   A = admitted, = running, C = completed, X = killed at deadline,
   x = rejected at arrival, + = capacity join, > = still running at the
   end of the trace. *)

type comp = {
  c_id : string;
  mutable c_admit : int option;
  mutable c_reject : int option;
  mutable c_end : (int * char) option;
}

type racc = {
  r_id : int;
  mutable r_label : string;
  mutable r_comps : comp list;  (* reverse arrival order *)
  mutable r_joins : (int * int) list;  (* reverse order: (sim, quantity) *)
  mutable r_max_sim : int;
}

let legend =
  "legend: A admitted  = running  C completed  X killed  x rejected  \
   + capacity join  > still running"

let render ?(width = 60) events =
  let width = max 10 width in
  let runs : (int, racc) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let racc id =
    match Hashtbl.find_opt runs id with
    | Some r -> r
    | None ->
        let r =
          { r_id = id; r_label = ""; r_comps = []; r_joins = []; r_max_sim = 0 }
        in
        Hashtbl.replace runs id r;
        order := id :: !order;
        r
  in
  let comp r id =
    match List.find_opt (fun c -> String.equal c.c_id id) r.r_comps with
    | Some c -> c
    | None ->
        let c = { c_id = id; c_admit = None; c_reject = None; c_end = None } in
        r.r_comps <- c :: r.r_comps;
        c
  in
  List.iter
    (fun (e : Events.t) ->
      let r = racc e.Events.run in
      Option.iter (fun t -> r.r_max_sim <- max r.r_max_sim t) e.Events.sim;
      let sim = Option.value e.Events.sim ~default:r.r_max_sim in
      match e.Events.payload with
      | Events.Run_started { label } -> r.r_label <- label
      | Events.Capacity_joined { quantity; _ } ->
          r.r_joins <- (sim, quantity) :: r.r_joins
      | Events.Admitted { id; _ } -> (comp r id).c_admit <- Some sim
      | Events.Rejected { id; _ } -> (comp r id).c_reject <- Some sim
      | Events.Completed { id } -> (comp r id).c_end <- Some (sim, 'C')
      | Events.Killed { id; _ } -> (comp r id).c_end <- Some (sim, 'X')
      (* A preemption ends the computation's lane like a kill, just
         earlier and by choice. *)
      | Events.Preempted { id; _ } -> (comp r id).c_end <- Some (sim, 'P')
      | Events.Decision _ | Events.Shed _ | Events.Fault_injected _
      | Events.Commitment_revoked _ | Events.Commitment_degraded _
      | Events.Repaired _ | Events.Anomaly _ | Events.Span _
      | Events.Metric_sample _ | Events.Hist_sample _
      | Events.Audit_divergence _ | Events.Unknown _ -> ())
    events;
  let buf = Buffer.create 1024 in
  let run_ids = List.rev !order in
  List.iter
    (fun run_id ->
      let r = Hashtbl.find runs run_id in
      let comps = List.rev r.r_comps in
      let horizon =
        let from_label =
          Option.bind (Summary.label_field "horizon" r.r_label) int_of_string_opt
        in
        max 1 (max (Option.value from_label ~default:0) (r.r_max_sim + 1))
      in
      let pos t = min (width - 1) (t * width / horizon) in
      let gutter =
        List.fold_left
          (fun acc c -> max acc (String.length c.c_id))
          (String.length "capacity") comps
        + 2
      in
      let row name track =
        Buffer.add_string buf "  ";
        Buffer.add_string buf name;
        Buffer.add_string buf (String.make (gutter - String.length name) ' ');
        Buffer.add_string buf track;
        Buffer.add_char buf '\n'
      in
      Buffer.add_string buf
        (Printf.sprintf "run %d: %s\n" run_id
           (if r.r_label = "" then "(no run-started record)" else r.r_label));
      (* Ruler: a tick every 10 columns, labelled with its sim time. *)
      let labels = Buffer.create width and rule = Buffer.create width in
      let col = ref 0 in
      while !col < width do
        let label = string_of_int (!col * horizon / width) in
        Buffer.add_string labels label;
        let pad = min (width - !col) 10 - String.length label in
        if pad > 0 then Buffer.add_string labels (String.make pad ' ');
        Buffer.add_char rule '|';
        Buffer.add_string rule (String.make (min (width - !col) 10 - 1) '-');
        col := !col + 10
      done;
      row "sim" (Buffer.contents labels);
      row "" (Buffer.contents rule);
      (if r.r_joins <> [] then
         let track = Bytes.make width ' ' in
         List.iter
           (fun (t, _) -> Bytes.set track (pos t) '+')
           (List.rev r.r_joins);
         let note =
           String.concat ", "
             (List.rev_map
                (fun (t, q) -> Printf.sprintf "+%d@t%d" q t)
                r.r_joins)
         in
         row "capacity" (Bytes.to_string track ^ "  " ^ note));
      List.iter
        (fun c ->
          let track = Bytes.make width ' ' in
          (match (c.c_admit, c.c_reject) with
          | Some ta, _ ->
              let a = pos ta in
              let stop, stop_c =
                match c.c_end with
                | Some (te, ch) -> (pos te, ch)
                | None -> (width - 1, '>')
              in
              let stop = max a stop in
              Bytes.fill track a (stop - a + 1) '=';
              Bytes.set track a 'A';
              if stop > a then Bytes.set track stop stop_c
          | None, Some tr -> Bytes.set track (pos tr) 'x'
          | None, None -> ());
          row c.c_id (Bytes.to_string track))
        comps;
      Buffer.add_char buf '\n')
    run_ids;
  Buffer.add_string buf legend;
  Buffer.add_char buf '\n';
  Buffer.contents buf
