(* OpenMetrics / Prometheus text exposition of a metrics snapshot.

   Registry names keep the repo's own taxonomy ("admission/decision_s
   .rota"): the trailing ".slug" becomes a {slug="..."} label (the same
   per-policy / per-reason labels the Slug module mints) and the
   remaining characters are mapped into the OpenMetrics name alphabet
   [a-zA-Z0-9_:], so the whole registry renders without the caller
   renaming anything. *)

(* --- names, labels, values ---------------------------------------------- *)

let valid_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.create (String.length s) in
    String.iteri
      (fun i c -> Bytes.set b i (if valid_name_char c then c else '_'))
      s;
    let s = Bytes.to_string b in
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  end

(* "admission/decision_s.rota" -> ("admission/decision_s", Some "rota").
   A dot at either end is not a label split — the name stays whole. *)
let split_slug name =
  match String.rindex_opt name '.' with
  | Some i when i > 0 && i < String.length name - 1 ->
      ( String.sub name 0 i,
        Some (String.sub name (i + 1) (String.length name - i - 1)) )
  | _ -> (name, None)

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* Shortest decimal that round-trips, so golden files stay readable;
   non-finite values use the spec's spellings. *)
let float_str v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v

let labels_str = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* --- family assembly ----------------------------------------------------- *)

type data =
  | Counter of float
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }
  | Summary of { quantiles : (float * float) list; count : int; sum : float }

let type_str = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Summary _ -> "summary"

type group = {
  fam : string;
  ftype : string;
  mutable samples : ((string * string) list * data) list;  (* reversed *)
}

(* Group (raw_name, data) entries into families in first-appearance
   order.  Distinct registry names can collapse onto one family name
   (that is the point: per-slug series share a family); if they collapse
   across metric *types* the later family is renamed with its type as a
   suffix so the output never declares one family twice. *)
let group_entries entries =
  let by_fam : (string, group) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (raw, data) ->
      let base, slug = split_slug raw in
      let labels = match slug with None -> [] | Some s -> [ ("slug", s) ] in
      let ftype = type_str data in
      let rec place fam =
        match Hashtbl.find_opt by_fam fam with
        | Some g when g.ftype = ftype -> g.samples <- (labels, data) :: g.samples
        | Some _ -> place (fam ^ "_" ^ ftype)
        | None ->
            let g = { fam; ftype; samples = [ (labels, data) ] } in
            Hashtbl.replace by_fam fam g;
            order := g :: !order
      in
      place (sanitize_name base))
    entries;
  List.rev !order

let render_group buf g =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" g.fam g.ftype);
  let line name labels v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (labels_str labels) v)
  in
  List.iter
    (fun (labels, data) ->
      match data with
      | Counter v -> line (g.fam ^ "_total") labels (float_str v)
      | Gauge v -> line g.fam labels (float_str v)
      | Histogram { buckets; count; sum } ->
          List.iter
            (fun (ub, cum) ->
              line (g.fam ^ "_bucket")
                (labels @ [ ("le", float_str ub) ])
                (string_of_int cum))
            buckets;
          line (g.fam ^ "_bucket")
            (labels @ [ ("le", "+Inf") ])
            (string_of_int count);
          line (g.fam ^ "_sum") labels (float_str sum);
          line (g.fam ^ "_count") labels (string_of_int count)
      | Summary { quantiles; count; sum } ->
          List.iter
            (fun (q, v) ->
              line g.fam
                (labels @ [ ("quantile", float_str q) ])
                (float_str v))
            quantiles;
          line (g.fam ^ "_sum") labels (float_str sum);
          line (g.fam ^ "_count") labels (string_of_int count))
    (List.rev g.samples)

let render_entries entries =
  let buf = Buffer.create 4096 in
  List.iter (render_group buf) (group_entries entries);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let render (view : Metrics.view) =
  render_entries
    (List.map (fun (n, v) -> (n, Counter (float_of_int v))) view.counters
    @ List.map (fun (n, v) -> (n, Gauge (float_of_int v))) view.gauges
    @ List.map
        (fun (h : Metrics.histogram_view) ->
          ( h.hname,
            Histogram { buckets = h.bucket_counts; count = h.count; sum = h.sum }
          ))
        view.histograms)

(* --- trace reconstruction ------------------------------------------------ *)

(* From a finished trace only the sampled series survive: the last
   metric-sample per name gives a typed point (the family tag arrived
   with this exporter; untagged samples from older traces render as
   gauges), and the last hist-sample per name gives a quantile summary —
   the trace does not carry bucket boundaries, so histograms come back
   as OpenMetrics summaries rather than bucketed histograms. *)
let render_events events =
  let scalars : (string, data) Hashtbl.t = Hashtbl.create 32 in
  let hists : (string, data) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Events.t) ->
      match e.Events.payload with
      | Events.Metric_sample { name; value; family } ->
          let data =
            match family with
            | Some "counter" -> Counter value
            | Some _ | None -> Gauge value
          in
          Hashtbl.replace scalars name data
      | Events.Hist_sample { name; count; sum; p50; p95; p99; _ } ->
          Hashtbl.replace hists name
            (Summary
               {
                 quantiles = [ (0.5, p50); (0.95, p95); (0.99, p99) ];
                 count;
                 sum;
               })
      | _ -> ())
    events;
  let sorted tbl =
    Hashtbl.fold (fun n d acc -> (n, d) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  render_entries (sorted scalars @ sorted hists)

(* --- atomic snapshot writer ---------------------------------------------- *)

let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let write_snapshot path = write_file path (render (Metrics.snapshot ()))

let snapshot_sink ?(every = 1000) path =
  let every = max 1 every in
  let n = ref 0 in
  Sink.
    {
      emit =
        (fun _ ->
          incr n;
          if !n >= every then begin
            n := 0;
            write_snapshot path
          end);
      close = (fun () -> write_snapshot path);
    }

(* --- lint ----------------------------------------------------------------- *)

(* A small validating parser for the text format: enough grammar to
   catch a malformed render (bad name, broken label escaping, missing
   EOF) and the histogram laws a scraper relies on — cumulative buckets
   never decrease and the +Inf bucket equals _count. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_value tok =
  match tok with
  | "+Inf" | "Inf" -> Ok infinity
  | "-Inf" -> Ok neg_infinity
  | "NaN" -> Ok nan
  | _ -> (
      match float_of_string_opt tok with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "invalid value %S" tok))

let valid_metric_name s =
  s <> ""
  && (match s.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all valid_name_char s

(* name{k="v",...} value — returns the sample or an error. *)
let parse_sample line =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let name_end =
    match String.index_opt line '{' with
    | Some i -> i
    | None -> ( match String.index_opt line ' ' with
               | Some i -> i
               | None -> String.length line)
  in
  let name = String.sub line 0 name_end in
  let* () =
    if valid_metric_name name then Ok () else err "invalid metric name %S" name
  in
  let* labels, rest_start =
    if name_end >= String.length line || line.[name_end] <> '{' then
      Ok ([], name_end)
    else begin
      (* Scan the label block byte-by-byte, honouring escaped quotes. *)
      let labels = ref [] in
      let i = ref (name_end + 1) in
      let n = String.length line in
      let result = ref None in
      (try
         while !result = None do
           if !i >= n then result := Some (err "unterminated label block")
           else if line.[!i] = '}' then begin
             incr i;
             result := Some (Ok ())
           end
           else begin
             let eq =
               match String.index_from_opt line !i '=' with
               | Some e -> e
               | None -> raise Exit
             in
             let key = String.sub line !i (eq - !i) in
             if not (valid_metric_name key) then begin
               result := Some (err "invalid label name %S" key);
               raise Exit
             end;
             if eq + 1 >= n || line.[eq + 1] <> '"' then raise Exit;
             let buf = Buffer.create 16 in
             let j = ref (eq + 2) in
             let closed = ref false in
             while (not !closed) && !j < n do
               (match line.[!j] with
               | '\\' when !j + 1 < n ->
                   (match line.[!j + 1] with
                   | 'n' -> Buffer.add_char buf '\n'
                   | '\\' -> Buffer.add_char buf '\\'
                   | '"' -> Buffer.add_char buf '"'
                   | c -> Buffer.add_char buf c);
                   incr j
               | '"' -> closed := true
               | c -> Buffer.add_char buf c);
               incr j
             done;
             if not !closed then raise Exit;
             labels := (key, Buffer.contents buf) :: !labels;
             i := !j;
             if !i < n && line.[!i] = ',' then incr i
           end
         done
       with Exit -> result := Some (err "malformed label block"));
      match !result with
      | Some (Ok ()) -> Ok (List.rev !labels, !i)
      | Some (Error e) -> Error e
      | None -> err "malformed label block"
    end
  in
  let rest = String.sub line rest_start (String.length line - rest_start) in
  let* () =
    if rest = "" then err "missing value"
    else if rest.[0] <> ' ' then err "expected space before value"
    else Ok ()
  in
  let tok = String.trim rest in
  (* A timestamp after the value is legal in the format; take the first
     token as the value. *)
  let tok =
    match String.index_opt tok ' ' with
    | Some i -> String.sub tok 0 i
    | None -> tok
  in
  let* v = parse_value tok in
  Ok { s_name = name; s_labels = labels; s_value = v }

let known_types =
  [ "counter"; "gauge"; "histogram"; "summary"; "untyped"; "info"; "stateset" ]

let lint text =
  let ( let* ) = Result.bind in
  let err line_no fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line_no m)) fmt
  in
  let lines = String.split_on_char '\n' text in
  (* A trailing newline leaves one empty final chunk; anything else
     empty is a malformed file. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let families : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* histogram family -> (label-set minus le -> (buckets in order, count)) *)
  let hist_buckets :
      (string * (string * string) list, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist_counts : (string * (string * string) list, float) Hashtbl.t =
    Hashtbl.create 16
  in
  let rec check line_no seen_eof = function
    | [] ->
        if seen_eof then Ok ()
        else Error "missing # EOF terminator on the last line"
    | line :: rest ->
        let* () =
          if seen_eof then err line_no "content after # EOF" else Ok ()
        in
        let* () =
          if line = "" then err line_no "blank line"
          else if line = "# EOF" then Ok ()
          else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
            match
              String.split_on_char ' '
                (String.sub line 7 (String.length line - 7))
            with
            | [ fam; ty ] ->
                if not (valid_metric_name fam) then
                  err line_no "invalid family name %S" fam
                else if not (List.mem ty known_types) then
                  err line_no "unknown metric type %S" ty
                else if Hashtbl.mem families fam then
                  err line_no "family %S declared twice" fam
                else begin
                  Hashtbl.replace families fam ty;
                  Ok ()
                end
            | _ -> err line_no "malformed # TYPE line"
          end
          else if String.length line > 1 && line.[0] = '#' then Ok ()
            (* # HELP / # UNIT: tolerated, not checked *)
          else begin
            match parse_sample line with
            | Error e -> err line_no "%s" e
            | Ok s ->
                (* Attribute histogram samples to their family for the
                   bucket laws below. *)
                let strip suffix name =
                  let ls = String.length suffix and ln = String.length name in
                  if ln > ls && String.sub name (ln - ls) ls = suffix then
                    Some (String.sub name 0 (ln - ls))
                  else None
                in
                (match strip "_bucket" s.s_name with
                | Some fam when Hashtbl.find_opt families fam = Some "histogram"
                  -> (
                    let le =
                      List.assoc_opt "le" s.s_labels
                      |> Option.map (fun v ->
                             match parse_value v with
                             | Ok f -> f
                             | Error _ -> nan)
                    in
                    let base =
                      List.filter (fun (k, _) -> k <> "le") s.s_labels
                    in
                    match le with
                    | None -> ()
                    | Some le ->
                        let key = (fam, base) in
                        let cell =
                          match Hashtbl.find_opt hist_buckets key with
                          | Some c -> c
                          | None ->
                              let c = ref [] in
                              Hashtbl.replace hist_buckets key c;
                              c
                        in
                        cell := (le, s.s_value) :: !cell)
                | _ -> ());
                (match strip "_count" s.s_name with
                | Some fam when Hashtbl.find_opt families fam = Some "histogram"
                  ->
                    Hashtbl.replace hist_counts (fam, s.s_labels) s.s_value
                | _ -> ());
                Ok ()
          end
        in
        check (line_no + 1) (seen_eof || line = "# EOF") rest
  in
  let* () = check 1 false lines in
  (* Histogram laws per label-set. *)
  Hashtbl.fold
    (fun (fam, base) cell acc ->
      let* () = acc in
      let buckets = List.rev !cell in
      let* () =
        let rec mono = function
          | (le1, v1) :: ((le2, v2) :: _ as rest) ->
              if le2 < le1 then
                Error
                  (Printf.sprintf "%s: bucket bounds not ascending" fam)
              else if v2 < v1 then
                Error
                  (Printf.sprintf
                     "%s: cumulative bucket counts decrease at le=%s" fam
                     (float_str le2))
              else mono rest
          | _ -> Ok ()
        in
        mono buckets
      in
      let* inf_count =
        match List.find_opt (fun (le, _) -> le = infinity) buckets with
        | Some (_, v) -> Ok v
        | None -> Error (Printf.sprintf "%s: missing le=\"+Inf\" bucket" fam)
      in
      match Hashtbl.find_opt hist_counts (fam, base) with
      | Some c when c = inf_count -> Ok ()
      | Some c ->
          Error
            (Printf.sprintf "%s: +Inf bucket (%s) <> _count (%s)" fam
               (float_str inf_count) (float_str c))
      | None -> Error (Printf.sprintf "%s: missing _count sample" fam))
    hist_buckets (Ok ())
