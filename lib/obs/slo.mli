(** Multi-window error-budget burn rates over a live event stream.

    The serving SLO treats the remaining miss budget as a diminishing
    resource: every observed request is either {e good} (the assurance
    held — decided, and the decision re-verified) or {e bad} (a shed or
    an audit divergence: the promise was not kept).  The burn rate over
    a window is

    {v burn(w) = (bad / total over the last w seconds) / budget v}

    where [budget] is the tolerated bad fraction — burn 1.0 means the
    budget is being consumed exactly as fast as it accrues, burn 10
    means ten times too fast.  Two windows (classically 5m and 1h) read
    together distinguish a blip from a sustained burn.

    The implementation is a ring of per-second good/bad buckets covering
    the largest window: {!record} is O(1), {!burn} is one pass over the
    ring, and time is an explicit argument throughout so the window
    arithmetic is unit-testable without a clock. *)

type t

val create : ?budget:float -> ?horizon_s:int -> unit -> t
(** [budget] is the tolerated bad fraction (default [0.01], i.e. 1% of
    requests may miss); [horizon_s] bounds the largest queryable window
    (default [3600]).  Raises [Invalid_argument] when [budget <= 0] or
    [horizon_s < 1]. *)

val budget : t -> float

val record : t -> now:float -> good:bool -> unit
(** Count one observation in the bucket for second [now].  Time moving
    backwards is tolerated (the observation lands in its own second's
    bucket if still inside the horizon, and is dropped otherwise). *)

val totals : t -> now:float -> window_s:int -> int * int
(** [(good, bad)] over the last [window_s] seconds ending at [now]
    (clamped to the horizon). *)

val burn : t -> now:float -> window_s:int -> float
(** The burn rate over the window; [0.] while the window holds no
    observations (no traffic burns no budget). *)
