type t = { emit : Events.t -> unit; close : unit -> unit }

let make ~emit ~close = { emit; close }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let memory () =
  let captured = ref [] in
  let sink =
    { emit = (fun e -> captured := e :: !captured); close = (fun () -> ()) }
  in
  (sink, fun () -> List.rev !captured)

let jsonl ?(flush_every = 1) oc =
  if flush_every < 1 then invalid_arg "Sink.jsonl: flush_every must be >= 1";
  (* Line-at-a-time flush (the default): an interrupted run (Ctrl-C,
     SIGPIPE) still leaves every completed event on disk.  A larger
     [flush_every] amortizes the flush syscall for high-rate tracing at
     the cost of losing up to that many trailing events on a crash. *)
  let unflushed = ref 0 in
  {
    emit =
      (fun e ->
        output_string oc (Events.to_line e);
        output_char oc '\n';
        incr unflushed;
        if !unflushed >= flush_every then begin
          unflushed := 0;
          flush oc
        end);
    close = (fun () -> unflushed := 0; flush oc);
  }

(* Crash safety for buffered sinks: if the process unwinds without
   anyone calling [close] — an observer raised out of the engine, a
   fatal error path, plain [exit] — the buffered tail would vanish
   and leave a torn trace.  Flush (and close, releasing the fd) from
   [at_exit]; the [closed] guard makes the handler a no-op after a
   normal close, so the channel is never double-closed. *)
let owning_file ~make path =
  let oc = open_out_bin path in
  let inner = make oc in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      inner.close ();
      close_out oc
    end
  in
  at_exit close;
  { inner with close }

let jsonl_file ?flush_every path = owning_file ~make:(jsonl ?flush_every) path

let binary ?(flush_every = 1) oc =
  if flush_every < 1 then invalid_arg "Sink.binary: flush_every must be >= 1";
  (* The header goes out (and is flushed) immediately, so the file
     identifies itself as binary from the first write — a reader
     sniffing the magic never sees a headerless prefix. *)
  output_string oc Binary.header;
  flush oc;
  let unflushed = ref 0 in
  let buf = Buffer.create 192 in
  {
    emit =
      (fun e ->
        Buffer.clear buf;
        Binary.encode buf e;
        Buffer.output_buffer oc buf;
        incr unflushed;
        if !unflushed >= flush_every then begin
          unflushed := 0;
          flush oc
        end);
    close = (fun () -> unflushed := 0; flush oc);
  }

let binary_file ?flush_every path = owning_file ~make:(binary ?flush_every) path

let console ppf =
  {
    emit =
      (fun e ->
        match e.Events.payload with
        | Events.Span _ | Events.Metric_sample _ | Events.Hist_sample _ -> ()
        | _ -> Format.fprintf ppf "%a@." Events.pp e);
    close = (fun () -> Format.pp_print_flush ppf ());
  }

let tee a b =
  {
    emit = (fun e -> a.emit e; b.emit e);
    close = (fun () -> a.close (); b.close ());
  }
