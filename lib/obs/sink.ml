type t = { emit : Events.t -> unit; close : unit -> unit }

let make ~emit ~close = { emit; close }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let memory () =
  let captured = ref [] in
  let sink =
    { emit = (fun e -> captured := e :: !captured); close = (fun () -> ()) }
  in
  (sink, fun () -> List.rev !captured)

let jsonl oc =
  {
    emit =
      (fun e ->
        output_string oc (Events.to_line e);
        output_char oc '\n';
        (* Line-at-a-time flush: an interrupted run (Ctrl-C, SIGPIPE)
           still leaves every completed event on disk. *)
        flush oc);
    close = (fun () -> flush oc);
  }

let jsonl_file path =
  let oc = open_out path in
  let inner = jsonl oc in
  { inner with close = (fun () -> flush oc; close_out oc) }

let console ppf =
  {
    emit =
      (fun e ->
        match e.Events.payload with
        | Events.Span _ -> ()
        | _ -> Format.fprintf ppf "%a@." Events.pp e);
    close = (fun () -> Format.pp_print_flush ppf ());
  }

let tee a b =
  {
    emit = (fun e -> a.emit e; b.emit e);
    close = (fun () -> a.close (); b.close ());
  }
