(** Event sinks: where emitted telemetry goes.

    A sink is just an [emit] function plus a [close].  The {!Tracer}
    holds at most one installed sink; composition (console + file, say)
    is done with {!tee} rather than by the tracer itself. *)

type t = { emit : Events.t -> unit; close : unit -> unit }

val make : emit:(Events.t -> unit) -> close:(unit -> unit) -> t

val null : t
(** Drops everything. *)

val memory : unit -> t * (unit -> Events.t list)
(** An in-memory sink and a function returning everything captured so
    far, in emission order.  [close] is a no-op. *)

val jsonl : out_channel -> t
(** One JSON object per line.  [close] flushes but does {e not} close
    the channel (the caller owns it). *)

val jsonl_file : string -> t
(** Opens (truncating) [path]; [close] flushes and closes the file. *)

val console : Format.formatter -> t
(** Human-readable, one event per line via {!Events.pp}.  Span events
    are skipped — on a console they interleave confusingly with the
    simulated-time story.  [close] flushes. *)

val tee : t -> t -> t
(** Sends every event to both sinks; [close] closes both. *)
