(** Event sinks: where emitted telemetry goes.

    A sink is just an [emit] function plus a [close].  The {!Tracer}
    holds at most one installed sink; composition (console + file, say)
    is done with {!tee} rather than by the tracer itself. *)

type t = { emit : Events.t -> unit; close : unit -> unit }

val make : emit:(Events.t -> unit) -> close:(unit -> unit) -> t

val null : t
(** Drops everything. *)

val memory : unit -> t * (unit -> Events.t list)
(** An in-memory sink and a function returning everything captured so
    far, in emission order.  [close] is a no-op. *)

val jsonl : ?flush_every:int -> out_channel -> t
(** One JSON object per line.  [close] flushes but does {e not} close
    the channel (the caller owns it).  [flush_every] (default 1) is the
    number of lines buffered between flushes: 1 pays a flush syscall per
    event but survives interruption with every completed event on disk;
    larger values amortize the syscall for high-rate tracing (see the
    [e7/obs-overhead] bench group) at the cost of losing up to that many
    trailing events on a crash.  Raises [Invalid_argument] when
    [flush_every < 1]. *)

val jsonl_file : ?flush_every:int -> string -> t
(** Opens (truncating) [path]; [close] flushes and closes the file and
    is idempotent.  The sink also registers an [at_exit] flush+close,
    so even when the process unwinds without closing (an observer
    raising out of a run, a fatal exit) the buffered tail reaches disk
    and the trace stays [rota trace validate]-clean. *)

val binary : ?flush_every:int -> out_channel -> t
(** The compact binary format ({!Binary}): writes the 5-byte header
    immediately, then one length-prefixed record per event.  Flushing
    and ownership semantics are exactly {!jsonl}'s.  Note that unlike
    JSONL, a crash can cut a {e record} (not just a line): the readers
    report the dangling tail as truncation and keep every record before
    it. *)

val binary_file : ?flush_every:int -> string -> t
(** {!binary} over a file it opens (truncating) and owns, with the same
    idempotent-[close]-plus-[at_exit] crash safety as {!jsonl_file}. *)

val console : Format.formatter -> t
(** Human-readable, one event per line via {!Events.pp}.  Span and
    metric-sample events are skipped — on a console they interleave
    confusingly with the simulated-time story.  [close] flushes. *)

val tee : t -> t -> t
(** Sends every event to both sinks; [close] closes both. *)
