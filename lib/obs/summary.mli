(** Per-run and per-policy rollups of a telemetry event stream — the
    numbers behind [rota trace summarize] and [rota trace diff].

    The admission/completion story is aggregated per engine run
    (matching run-started envelopes), span wall-clock time is attributed
    per span name with {e self} time separated from {e total} time via
    the span id/parent linkage, and metric-sample events are regrouped
    into named time series. *)

type run = {
  run_id : int;
  label : string;  (** The run-started label, verbatim. *)
  policy : string;  (** Parsed from a [policy=...] label token; [""] if absent. *)
  horizon : int option;  (** Parsed from a [horizon=...] label token. *)
  capacity : int;  (** Sum of capacity-joined quantities. *)
  admitted : int;
  rejected : int;
  completed : int;
  killed : int;  (** Deadline kills = deadline misses among admitted. *)
  owed : int;  (** Total quantity still unfinished at kill time. *)
  decisions : int;  (** Decision-provenance records in the run. *)
  certified : int;
      (** Decisions carrying a certificate; [decisions - certified] is
          the coverage gap a full audit would have to skip (traces from
          older binaries, or uncertified policies). *)
  divergences : int;
      (** [audit-divergence] records the live watchdog emitted into the
          run — nonzero means the decider and checker disagreed. *)
  latencies : int array;
      (** Admission-to-completion times in simulated ticks, sorted
          ascending, one per completed computation. *)
  reject_reasons : (string * int) list;
      (** Reject counts bucketed by {!Slug.of_reason} — the same labels
          the metrics counters use — sorted count-descending then by
          name. *)
}

val offered : run -> int
(** [admitted + rejected]. *)

val admit_rate : run -> float
(** 0 when nothing was offered. *)

val latency_quantile : run -> float -> int
(** Nearest-rank quantile of {!field-latencies}; 0 when empty. *)

type span_stat = {
  span_name : string;
  count : int;
  total_s : float;  (** Summed durations (children included). *)
  self_s : float;
      (** Summed durations minus each span's direct children — time
          spent in the span itself.  Legacy spans without linkage
          (id 0) count wholly as self time. *)
  max_s : float;
}

type slow_span = { slow_name : string; slow_run : int; slow_s : float }
type series = { series_name : string; samples : (int option * float) list }

type hist_point = {
  hp_sim : int option;
  hp_count : int;  (** Cumulative observation count at sample time. *)
  hp_sum : float;
  hp_p50 : float;
  hp_p95 : float;
  hp_p99 : float;
  hp_max : float;
}

type hist_series = { hist_name : string; points : hist_point list }
(** One histogram's sampled snapshots ([hist-sample] events) in stream
    order — latency over time for the instrumented hot paths. *)

type t = {
  total_events : int;
  runs : run list;  (** In run-id order. *)
  span_stats : span_stat list;  (** Sorted by total time, descending. *)
  slowest : slow_span list;  (** Top-N individual spans by duration. *)
  series : series list;  (** Metric-sample series, sorted by name. *)
  hist_series : hist_series list;  (** Hist-sample series, sorted by name. *)
}

val of_events : ?top:int -> Events.t list -> t
(** [top] (default 10) bounds {!field-slowest}. *)

val label_field : string -> string -> string option
(** [label_field key label] finds a [key=value] token in a run label. *)

(** {1 Per-policy aggregation}

    [rota trace diff] compares two traces policy-by-policy; runs with
    the same [policy=] label are pooled first. *)

type agg = {
  agg_policy : string;
  agg_runs : int;
  agg_offered : int;
  agg_admitted : int;
  agg_completed : int;
  agg_killed : int;
  agg_owed : int;
  agg_latencies : int array;  (** Pooled and sorted ascending. *)
  agg_reject_reasons : (string * int) list;
      (** Pooled reject buckets, same ordering as {!run.reject_reasons}. *)
}

val by_policy : t -> agg list
(** In first-appearance order; runs without a policy label pool under
    ["(unlabelled)"]. *)

val agg_admit_rate : agg -> float
val agg_quantile : agg -> float -> int
