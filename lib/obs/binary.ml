(* Compact binary trace codec.

   Layout: a 5-byte file header (magic "ROTB" + version byte), then one
   length-prefixed record per event.  Every integer — record lengths
   included — is an LEB128 varint; signed fields are zigzag-mapped first
   so small negatives stay small.  Floats are the 8 little-endian bytes
   of [Int64.bits_of_float], which round-trips every value exactly
   (including nan and the infinities, which the JSONL codec cannot
   carry through [%.17g]).  Structured payload fields ([terms],
   [certificate], unknown-kind fields) are embedded as compact JSON
   strings: [Json.to_string] already round-trips exactly, so the binary
   format reuses that contract instead of inventing a second tree
   encoding. *)

let magic = "ROTB"
let version = 1
let header = magic ^ String.make 1 (Char.chr version)

(* Cap on a single record's length prefix.  Real records are tens to a
   few hundred bytes; a multi-megabyte claim means the stream is not a
   record boundary (corrupt file, or a JSONL file misdetected), and
   bounding it keeps a bad prefix from forcing a giant allocation. *)
let max_record_bytes = 16 * 1024 * 1024

(* --- encoding ------------------------------------------------------------ *)

let put_uvarint b n =
  let rec go n =
    if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

(* Zigzag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ... so sign costs one bit,
   not a max-width varint. *)
let put_int b n = put_uvarint b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let put_string b s =
  put_uvarint b (String.length s);
  Buffer.add_string b s

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')
let put_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

let put_json b j =
  match (j : Json.t) with
  | Json.Null -> Buffer.add_char b '\000'
  | j ->
      Buffer.add_char b '\001';
      put_string b (Json.to_string j)

let put_int_opt b = function
  | None -> Buffer.add_char b '\000'
  | Some n ->
      Buffer.add_char b '\001';
      put_int b n

let put_string_opt b = function
  | None -> Buffer.add_char b '\000'
  | Some s ->
      Buffer.add_char b '\001';
      put_string b s

let put_payload b (p : Events.payload) =
  let tag t = Buffer.add_char b (Char.chr t) in
  match p with
  | Events.Run_started { label } ->
      tag 1;
      put_string b label
  | Events.Capacity_joined { quantity; terms } ->
      tag 2;
      put_int b quantity;
      put_json b terms
  | Events.Admitted { id; policy; reason } ->
      tag 3;
      put_string b id;
      put_string b policy;
      put_string b reason
  | Events.Rejected { id; policy; reason } ->
      tag 4;
      put_string b id;
      put_string b policy;
      put_string b reason
  | Events.Decision { id; policy; action; slug; certificate; cid } ->
      tag 5;
      put_string b id;
      put_string b policy;
      put_string b action;
      put_string b slug;
      put_json b certificate;
      put_string_opt b cid
  | Events.Completed { id } ->
      tag 6;
      put_string b id
  | Events.Killed { id; owed } ->
      tag 7;
      put_string b id;
      put_int b owed
  | Events.Fault_injected { fault; quantity; terms } ->
      tag 8;
      put_string b fault;
      put_int b quantity;
      put_json b terms
  | Events.Commitment_revoked { id; quantity } ->
      tag 9;
      put_string b id;
      put_int b quantity
  | Events.Commitment_degraded { id; extra; released } ->
      tag 10;
      put_string b id;
      put_int b extra;
      put_bool b released
  | Events.Repaired { id; rung; attempt; certificate } ->
      tag 11;
      put_string b id;
      put_string b rung;
      put_int b attempt;
      put_json b certificate
  | Events.Preempted { id; owed } ->
      tag 12;
      put_string b id;
      put_int b owed
  | Events.Anomaly { id; reason } ->
      tag 13;
      put_string b id;
      put_string b reason
  | Events.Span { name; id; parent; depth; begin_s; duration_s } ->
      tag 14;
      put_string b name;
      put_int b id;
      put_int_opt b parent;
      put_int b depth;
      put_float b begin_s;
      put_float b duration_s
  | Events.Metric_sample { name; value; family } ->
      tag 15;
      put_string b name;
      put_float b value;
      put_string_opt b family
  | Events.Hist_sample { name; count; sum; min_v; max_v; p50; p95; p99 } ->
      tag 16;
      put_string b name;
      put_int b count;
      put_float b sum;
      put_float b min_v;
      put_float b max_v;
      put_float b p50;
      put_float b p95;
      put_float b p99
  | Events.Audit_divergence { id; action; of_seq; message } ->
      tag 17;
      put_string b id;
      put_string b action;
      put_int b of_seq;
      put_string b message
  | Events.Shed { id; slug; reason } ->
      tag 18;
      put_string b id;
      put_string b slug;
      put_string b reason
  | Events.Unknown { kind; fields } ->
      tag 0;
      put_string b kind;
      put_uvarint b (List.length fields);
      List.iter
        (fun (name, v) ->
          put_string b name;
          (* Unknown fields may legitimately hold [Null] (unlike the
             known optional slots, whose absence means null), so null is
             encoded explicitly as the JSON text. *)
          put_string b (Json.to_string v))
        fields

let put_body b (e : Events.t) =
  put_int b e.Events.seq;
  put_int b e.Events.run;
  put_int_opt b e.Events.sim;
  put_float b e.Events.wall_s;
  put_payload b e.Events.payload

let encode b e =
  let body = Buffer.create 96 in
  put_body body e;
  put_uvarint b (Buffer.length body);
  Buffer.add_buffer b body

(* --- decoding ------------------------------------------------------------ *)

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

type src = { s : string; limit : int; mutable pos : int }

let get_byte src =
  if src.pos >= src.limit then corrupt "record ends mid-field"
  else begin
    let c = Char.code (String.unsafe_get src.s src.pos) in
    src.pos <- src.pos + 1;
    c
  end

let get_uvarint src =
  let rec go shift acc =
    if shift > Sys.int_size - 7 then corrupt "varint too long"
    else
      let c = get_byte src in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_int src =
  let n = get_uvarint src in
  (n lsr 1) lxor (-(n land 1))

let get_string src =
  let len = get_uvarint src in
  if len < 0 || src.pos + len > src.limit then
    corrupt "string length %d overruns the record" len
  else begin
    let s = String.sub src.s src.pos len in
    src.pos <- src.pos + len;
    s
  end

let get_bool src =
  match get_byte src with
  | 0 -> false
  | 1 -> true
  | c -> corrupt "invalid boolean byte 0x%02x" c

let get_float src =
  if src.pos + 8 > src.limit then corrupt "record ends mid-float"
  else begin
    let bits = ref 0L in
    for i = 7 downto 0 do
      bits :=
        Int64.logor (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code (String.unsafe_get src.s (src.pos + i))))
    done;
    src.pos <- src.pos + 8;
    Int64.float_of_bits !bits
  end

let get_parsed_json src =
  let text = get_string src in
  match Json.parse text with
  | Ok j -> j
  | Error msg -> corrupt "embedded JSON does not parse: %s" msg

let get_json src =
  match get_byte src with
  | 0 -> Json.Null
  | 1 -> get_parsed_json src
  | c -> corrupt "invalid json tag byte 0x%02x" c

let get_int_opt src =
  match get_byte src with
  | 0 -> None
  | 1 -> Some (get_int src)
  | c -> corrupt "invalid option tag byte 0x%02x" c

let get_string_opt src =
  match get_byte src with
  | 0 -> None
  | 1 -> Some (get_string src)
  | c -> corrupt "invalid option tag byte 0x%02x" c

let get_payload src : Events.payload =
  match get_byte src with
  | 1 -> Run_started { label = get_string src }
  | 2 ->
      let quantity = get_int src in
      let terms = get_json src in
      Capacity_joined { quantity; terms }
  | 3 ->
      let id = get_string src in
      let policy = get_string src in
      let reason = get_string src in
      Admitted { id; policy; reason }
  | 4 ->
      let id = get_string src in
      let policy = get_string src in
      let reason = get_string src in
      Rejected { id; policy; reason }
  | 5 ->
      let id = get_string src in
      let policy = get_string src in
      let action = get_string src in
      let slug = get_string src in
      let certificate = get_json src in
      (* The cid slot was appended after version 1 shipped; records
         written before it simply end here, so its absence (not just a
         None byte) decodes as None and old WALs keep reading. *)
      let cid = if src.pos < src.limit then get_string_opt src else None in
      Decision { id; policy; action; slug; certificate; cid }
  | 6 -> Completed { id = get_string src }
  | 7 ->
      let id = get_string src in
      let owed = get_int src in
      Killed { id; owed }
  | 8 ->
      let fault = get_string src in
      let quantity = get_int src in
      let terms = get_json src in
      Fault_injected { fault; quantity; terms }
  | 9 ->
      let id = get_string src in
      let quantity = get_int src in
      Commitment_revoked { id; quantity }
  | 10 ->
      let id = get_string src in
      let extra = get_int src in
      let released = get_bool src in
      Commitment_degraded { id; extra; released }
  | 11 ->
      let id = get_string src in
      let rung = get_string src in
      let attempt = get_int src in
      let certificate = get_json src in
      Repaired { id; rung; attempt; certificate }
  | 12 ->
      let id = get_string src in
      let owed = get_int src in
      Preempted { id; owed }
  | 13 ->
      let id = get_string src in
      let reason = get_string src in
      Anomaly { id; reason }
  | 14 ->
      let name = get_string src in
      let id = get_int src in
      let parent = get_int_opt src in
      let depth = get_int src in
      let begin_s = get_float src in
      let duration_s = get_float src in
      Span { name; id; parent; depth; begin_s; duration_s }
  | 15 ->
      let name = get_string src in
      let value = get_float src in
      let family = get_string_opt src in
      Metric_sample { name; value; family }
  | 16 ->
      let name = get_string src in
      let count = get_int src in
      let sum = get_float src in
      let min_v = get_float src in
      let max_v = get_float src in
      let p50 = get_float src in
      let p95 = get_float src in
      let p99 = get_float src in
      Hist_sample { name; count; sum; min_v; max_v; p50; p95; p99 }
  | 17 ->
      let id = get_string src in
      let action = get_string src in
      let of_seq = get_int src in
      let message = get_string src in
      Audit_divergence { id; action; of_seq; message }
  | 18 ->
      let id = get_string src in
      let slug = get_string src in
      let reason = get_string src in
      Shed { id; slug; reason }
  | 0 ->
      let kind = get_string src in
      let n = get_uvarint src in
      (* Field count is bounded by the record length (each field costs
         at least two bytes), so a corrupt count fails fast instead of
         looping. *)
      if n > src.limit - src.pos then
        corrupt "unknown-kind field count %d overruns the record" n
      else
        let fields =
          List.init n (fun _ ->
              let name = get_string src in
              let v = get_parsed_json src in
              (name, v))
        in
        Unknown { kind; fields }
  | t -> corrupt "unknown payload tag 0x%02x" t

let decode_body s ~pos ~limit =
  let src = { s; limit; pos } in
  let seq = get_int src in
  let run = get_int src in
  let sim = get_int_opt src in
  let wall_s = get_float src in
  let payload = get_payload src in
  if src.pos <> limit then
    corrupt "%d trailing bytes in record" (limit - src.pos)
  else { Events.seq; run; sim; wall_s; payload }

let decode_string s ~pos =
  match
    let src = { s; limit = String.length s; pos } in
    let len = get_uvarint src in
    if len > src.limit - src.pos then
      corrupt "record length %d overruns the buffer" len
    else
      let e = decode_body s ~pos:src.pos ~limit:(src.pos + len) in
      (e, src.pos + len)
  with
  | result -> Ok result
  | exception Corrupt msg -> Error msg

let roundtrip e =
  let b = Buffer.create 96 in
  encode b e;
  Result.map fst (decode_string (Buffer.contents b) ~pos:0)

(* --- channel-level reading ----------------------------------------------- *)

let read_header ic =
  let buf = Bytes.create (String.length header) in
  match really_input ic buf 0 (Bytes.length buf) with
  | exception End_of_file -> Error "file too short for a binary trace header"
  | () ->
      let got = Bytes.to_string buf in
      if not (String.length got >= 4 && String.sub got 0 4 = magic) then
        Error "missing ROTB magic"
      else if got.[4] <> header.[4] then
        Error
          (Printf.sprintf "unsupported binary trace version %d (expected %d)"
             (Char.code got.[4]) version)
      else Ok ()

type item =
  | Event of Events.t
  | Eof
  | Cut of int
  | Malformed of string

(* Read exactly [Bytes.length buf - off] more bytes unless EOF lands
   first; returns how far it got. *)
let rec fill ic buf off =
  if off >= Bytes.length buf then off
  else
    match input ic buf off (Bytes.length buf - off) with
    | 0 -> off
    | k -> fill ic buf (off + k)

let read_item ic =
  let rec read_len shift acc nbytes =
    match input_char ic with
    | exception End_of_file -> if nbytes = 0 then `Eof else `Cut nbytes
    | c ->
        let v = Char.code c in
        if shift > Sys.int_size - 7 then `Bad "record length varint too long"
        else
          let acc = acc lor ((v land 0x7f) lsl shift) in
          if v land 0x80 = 0 then `Len (acc, nbytes + 1)
          else read_len (shift + 7) acc (nbytes + 1)
  in
  match read_len 0 0 0 with
  | `Eof -> Eof
  | `Cut n -> Cut n
  | `Bad msg -> Malformed msg
  | `Len (len, prefix) ->
      if len > max_record_bytes then
        Malformed
          (Printf.sprintf "record length %d exceeds the %d-byte cap" len
             max_record_bytes)
      else
        let body = Bytes.create len in
        let got = fill ic body 0 in
        if got < len then Cut (prefix + got)
        else begin
          match
            decode_body (Bytes.unsafe_to_string body) ~pos:0 ~limit:len
          with
          | e -> Event e
          | exception Corrupt msg -> Malformed msg
        end

(* --- detection ----------------------------------------------------------- *)

let file_is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let buf = Bytes.create 4 in
      (match really_input ic buf 0 4 with
      | exception End_of_file -> false
      | () -> Bytes.to_string buf = magic)
