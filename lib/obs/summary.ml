type run = {
  run_id : int;
  label : string;
  policy : string;
  horizon : int option;
  capacity : int;
  admitted : int;
  rejected : int;
  completed : int;
  killed : int;
  owed : int;
  decisions : int;
  certified : int;
  divergences : int;
  latencies : int array;
  reject_reasons : (string * int) list;
}

type span_stat = {
  span_name : string;
  count : int;
  total_s : float;
  self_s : float;
  max_s : float;
}

type slow_span = { slow_name : string; slow_run : int; slow_s : float }
type series = { series_name : string; samples : (int option * float) list }

type hist_point = {
  hp_sim : int option;
  hp_count : int;
  hp_sum : float;
  hp_p50 : float;
  hp_p95 : float;
  hp_p99 : float;
  hp_max : float;
}

type hist_series = { hist_name : string; points : hist_point list }

type t = {
  total_events : int;
  runs : run list;
  span_stats : span_stat list;
  slowest : slow_span list;
  series : series list;
  hist_series : hist_series list;
}

let offered r = r.admitted + r.rejected

let admit_rate r =
  let o = offered r in
  if o = 0 then 0. else float_of_int r.admitted /. float_of_int o

(* "engine policy=rota dispatch=reservation horizon=200" -> Some "rota" *)
let label_field key label =
  List.find_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = key ->
          Some (String.sub tok (i + 1) (String.length tok - i - 1))
      | _ -> None)
    (String.split_on_char ' ' label)

(* Nearest-rank quantile of a sorted array; 0 when empty. *)
let sorted_quantile a q =
  let n = Array.length a in
  if n = 0 then 0
  else
    let q = Float.min 1. (Float.max 0. q) in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let latency_quantile r q = sorted_quantile r.latencies q

(* Mutable accumulator per run while scanning the stream. *)
type racc = {
  mutable a_label : string;
  mutable a_capacity : int;
  mutable a_admitted : int;
  mutable a_rejected : int;
  mutable a_completed : int;
  mutable a_killed : int;
  mutable a_owed : int;
  mutable a_decisions : int;
  mutable a_certified : int;
  mutable a_divergences : int;
  mutable a_latencies : int list;
  a_reject_reasons : (string, int) Hashtbl.t;
}

(* Count-descending, then name, so the heaviest bucket leads and ties
   are deterministic. *)
let sorted_reasons tbl =
  Hashtbl.fold (fun slug n acc -> (slug, n) :: acc) tbl []
  |> List.sort (fun (s1, n1) (s2, n2) ->
         match compare n2 n1 with 0 -> String.compare s1 s2 | c -> c)

let merge_reasons tbl reasons =
  List.iter
    (fun (slug, n) ->
      Hashtbl.replace tbl slug
        (n + Option.value (Hashtbl.find_opt tbl slug) ~default:0))
    reasons

(* A span flattened out of its inline record, so it can be accumulated. *)
type sp = {
  sp_run : int;
  sp_name : string;
  sp_id : int;
  sp_parent : int option;
  sp_dur : float;
}

let of_events ?(top = 10) events =
  let runs : (int, racc) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let racc run_id =
    match Hashtbl.find_opt runs run_id with
    | Some a -> a
    | None ->
        let a =
          {
            a_label = "";
            a_capacity = 0;
            a_admitted = 0;
            a_rejected = 0;
            a_completed = 0;
            a_killed = 0;
            a_owed = 0;
            a_decisions = 0;
            a_certified = 0;
            a_divergences = 0;
            a_latencies = [];
            a_reject_reasons = Hashtbl.create 8;
          }
        in
        Hashtbl.replace runs run_id a;
        order := run_id :: !order;
        a
  in
  let admit_time : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let spans = ref [] in
  let series_tbl : (string, (int option * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let hist_tbl : (string, hist_point list ref) Hashtbl.t = Hashtbl.create 16 in
  let total_events = ref 0 in
  List.iter
    (fun (e : Events.t) ->
      incr total_events;
      let a = racc e.Events.run in
      match e.Events.payload with
      | Events.Run_started { label } -> a.a_label <- label
      | Events.Capacity_joined { quantity; _ } ->
          a.a_capacity <- a.a_capacity + quantity
      | Events.Admitted { id; _ } ->
          a.a_admitted <- a.a_admitted + 1;
          Option.iter
            (fun t -> Hashtbl.replace admit_time (e.Events.run, id) t)
            e.Events.sim
      (* Bucketed by the same slug the metrics counters use
         (admission/reject_reason.<slug>), so the two tellings agree.
         Counted from the legacy Rejected record, not the Decision
         record that newer traces emit alongside it — counting both
         would double every reject. *)
      | Events.Rejected { reason; _ } ->
          a.a_rejected <- a.a_rejected + 1;
          merge_reasons a.a_reject_reasons [ (Slug.of_reason reason, 1) ]
      | Events.Completed { id } ->
          a.a_completed <- a.a_completed + 1;
          Option.iter
            (fun t ->
              match Hashtbl.find_opt admit_time (e.Events.run, id) with
              | Some t0 -> a.a_latencies <- (t - t0) :: a.a_latencies
              | None -> ())
            e.Events.sim
      | Events.Killed { owed; _ } ->
          a.a_killed <- a.a_killed + 1;
          a.a_owed <- a.a_owed + owed
      | Events.Span { name; id; parent; depth = _; begin_s = _; duration_s } ->
          spans :=
            {
              sp_run = e.Events.run;
              sp_name = name;
              sp_id = id;
              sp_parent = parent;
              sp_dur = duration_s;
            }
            :: !spans
      | Events.Metric_sample { name; value; family = _ } ->
          let cell =
            match Hashtbl.find_opt series_tbl name with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace series_tbl name c;
                c
          in
          cell := (e.Events.sim, value) :: !cell
      | Events.Hist_sample { name; count; sum; min_v = _; max_v; p50; p95; p99 }
        ->
          let cell =
            match Hashtbl.find_opt hist_tbl name with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace hist_tbl name c;
                c
          in
          cell :=
            {
              hp_sim = e.Events.sim;
              hp_count = count;
              hp_sum = sum;
              hp_p50 = p50;
              hp_p95 = p95;
              hp_p99 = p99;
              hp_max = max_v;
            }
            :: !cell
      (* Certificate coverage: a trace from an older binary carries
         decisions without certificates (or none at all) — the summary
         makes that gap visible without running a full audit. *)
      | Events.Decision { certificate; _ } ->
          a.a_decisions <- a.a_decisions + 1;
          if certificate <> Json.Null then a.a_certified <- a.a_certified + 1
      | Events.Audit_divergence _ -> a.a_divergences <- a.a_divergences + 1
      (* Fault/repair lifecycle events don't change admission or
         completion counts; the repair counters reach the summary as
         metric samples instead.  Likewise sheds: nothing was offered to
         the decider, so they stay out of the admission arithmetic and
         arrive as server/shed.* samples. *)
      | Events.Fault_injected _ | Events.Shed _
      | Events.Commitment_revoked _ | Events.Commitment_degraded _
      | Events.Repaired _ | Events.Preempted _ | Events.Anomaly _
      | Events.Unknown _ -> ())
    events;
  let runs =
    List.rev_map
      (fun run_id ->
        let a = Hashtbl.find runs run_id in
        let latencies = Array.of_list a.a_latencies in
        Array.sort compare latencies;
        {
          run_id;
          label = a.a_label;
          policy = Option.value (label_field "policy" a.a_label) ~default:"";
          horizon =
            Option.bind (label_field "horizon" a.a_label) int_of_string_opt;
          capacity = a.a_capacity;
          admitted = a.a_admitted;
          rejected = a.a_rejected;
          completed = a.a_completed;
          killed = a.a_killed;
          owed = a.a_owed;
          decisions = a.a_decisions;
          certified = a.a_certified;
          divergences = a.a_divergences;
          latencies;
          reject_reasons = sorted_reasons a.a_reject_reasons;
        })
      !order
    |> List.sort (fun r1 r2 -> compare r1.run_id r2.run_id)
  in
  let spans = List.rev !spans in
  (* Self time = own duration minus direct children's durations, linked
     by the span id/parent fields.  Legacy spans (id 0) carry no linkage
     and count their whole duration as self time. *)
  let child_sum : (int, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.sp_parent with
      | Some p ->
          Hashtbl.replace child_sum p
            (s.sp_dur +. Option.value (Hashtbl.find_opt child_sum p) ~default:0.)
      | None -> ())
    spans;
  let by_name : (string, span_stat) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let self =
        s.sp_dur
        -.
        (if s.sp_id = 0 then 0.
         else Option.value (Hashtbl.find_opt child_sum s.sp_id) ~default:0.)
      in
      let self = Float.max 0. self in
      let prev =
        Option.value
          (Hashtbl.find_opt by_name s.sp_name)
          ~default:
            {
              span_name = s.sp_name;
              count = 0;
              total_s = 0.;
              self_s = 0.;
              max_s = 0.;
            }
      in
      Hashtbl.replace by_name s.sp_name
        {
          prev with
          count = prev.count + 1;
          total_s = prev.total_s +. s.sp_dur;
          self_s = prev.self_s +. self;
          max_s = Float.max prev.max_s s.sp_dur;
        })
    spans;
  let span_stats =
    Hashtbl.fold (fun _ v acc -> v :: acc) by_name []
    |> List.sort (fun a b -> compare b.total_s a.total_s)
  in
  let slowest =
    List.map
      (fun s -> { slow_name = s.sp_name; slow_run = s.sp_run; slow_s = s.sp_dur })
      spans
    |> List.sort (fun a b -> compare b.slow_s a.slow_s)
    |> List.filteri (fun i _ -> i < top)
  in
  let series =
    Hashtbl.fold
      (fun name cell acc ->
        { series_name = name; samples = List.rev !cell } :: acc)
      series_tbl []
    |> List.sort (fun a b -> String.compare a.series_name b.series_name)
  in
  let hist_series =
    Hashtbl.fold
      (fun name cell acc -> { hist_name = name; points = List.rev !cell } :: acc)
      hist_tbl []
    |> List.sort (fun a b -> String.compare a.hist_name b.hist_name)
  in
  { total_events = !total_events; runs; span_stats; slowest; series; hist_series }

(* --- per-policy aggregation (for diff) ----------------------------------- *)

type agg = {
  agg_policy : string;
  agg_runs : int;
  agg_offered : int;
  agg_admitted : int;
  agg_completed : int;
  agg_killed : int;
  agg_owed : int;
  agg_latencies : int array;
  agg_reject_reasons : (string * int) list;
}

let agg_admit_rate a =
  if a.agg_offered = 0 then 0.
  else float_of_int a.agg_admitted /. float_of_int a.agg_offered

let agg_quantile a q = sorted_quantile a.agg_latencies q

let by_policy t =
  let tbl : (string, agg) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = if r.policy = "" then "(unlabelled)" else r.policy in
      let prev =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            order := key :: !order;
            {
              agg_policy = key;
              agg_runs = 0;
              agg_offered = 0;
              agg_admitted = 0;
              agg_completed = 0;
              agg_killed = 0;
              agg_owed = 0;
              agg_latencies = [||];
              agg_reject_reasons = [];
            }
      in
      let reasons = Hashtbl.create 8 in
      merge_reasons reasons prev.agg_reject_reasons;
      merge_reasons reasons r.reject_reasons;
      Hashtbl.replace tbl key
        {
          prev with
          agg_runs = prev.agg_runs + 1;
          agg_offered = prev.agg_offered + offered r;
          agg_admitted = prev.agg_admitted + r.admitted;
          agg_completed = prev.agg_completed + r.completed;
          agg_killed = prev.agg_killed + r.killed;
          agg_owed = prev.agg_owed + r.owed;
          agg_latencies = Array.append prev.agg_latencies r.latencies;
          agg_reject_reasons = sorted_reasons reasons;
        })
    t.runs;
  List.rev_map
    (fun key ->
      let a = Hashtbl.find tbl key in
      let latencies = Array.copy a.agg_latencies in
      Array.sort compare latencies;
      { a with agg_latencies = latencies })
    !order
