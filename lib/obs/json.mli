(** A minimal JSON value type with a printer and a parser.

    The telemetry layer must not pull heavyweight dependencies into the
    substrate libraries, so this is a deliberately small, self-contained
    codec: enough to emit one event per line (JSONL) and to parse those
    lines back for round-trip tests and offline validation.  Floats are
    printed with 17 significant digits so that every double round-trips
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering (no newlines, suitable for JSONL). *)

val parse : string -> (t, string) result
(** Parse one JSON document.  Numbers without [.], [e] or [E] parse as
    [Int]; everything else numeric parses as [Float]. *)

(* Accessors used when decoding events; all return [Error] rather than
   raising on shape mismatches. *)

val member : string -> t -> t option
(** Field lookup in an [Obj] ([None] on other constructors). *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts both [Int] and [Float]. *)

val to_str : t -> (string, string) result
