(** Typed telemetry events and their stable JSONL encoding.

    Every record carries a process-wide sequence number, the id of the
    engine run that produced it (0 outside any run), the {e simulated}
    time when one applies, and the wall-clock time.  The JSON schema is
    documented in [doc/observability.md]; {!of_json} accepts exactly
    what {!to_json} produces, so every event kind round-trips. *)

type payload =
  | Run_started of { label : string }
      (** A new engine run (or other traced scope) began; subsequent
          simulated times restart from this point. *)
  | Capacity_joined of { quantity : int }
      (** Resources joined the open system; [quantity] is the total
          usable quantity within the run's horizon. *)
  | Admitted of { id : string; policy : string; reason : string }
  | Rejected of { id : string; policy : string; reason : string }
  | Completed of { id : string }
  | Killed of { id : string; owed : int }
      (** Deadline kill; [owed] is the quantity still unfinished. *)
  | Span of { name : string; depth : int; duration_s : float }
      (** A timed scope closed; [depth] is its nesting level (0 =
          outermost).  Emitted at span {e exit}, so a parent span's
          record follows its children's. *)

type t = {
  seq : int;  (** Process-wide emission order, starting at 1. *)
  run : int;  (** Run id stamping this event; 0 before any run. *)
  sim : int option;  (** Simulated time (engine ticks), when meaningful. *)
  wall_s : float;  (** Wall-clock seconds (Unix epoch). *)
  payload : payload;
}

val kind : payload -> string
(** The schema's [kind] discriminator ("run-started", "admitted", ...). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val to_line : t -> string
(** One JSONL line (no trailing newline). *)

val of_line : string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner, e.g. ["t12 admitted c3 (reservation
    committed)"]; simulated time prints as ["t-"] when absent. *)

val pp_payload : sim:int option -> Format.formatter -> payload -> unit
(** Same rendering given just a payload — the single formatting path
    that both the engine's legacy pretty-printer and the console sink
    go through. *)
