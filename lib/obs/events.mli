(** Typed telemetry events and their stable JSONL encoding.

    Every record carries a process-wide sequence number, the id of the
    engine run that produced it (0 outside any run), the {e simulated}
    time when one applies, and the wall-clock time.  The JSON schema is
    documented in [doc/observability.md]; {!of_json} accepts exactly
    what {!to_json} produces, so every event kind round-trips.

    Parsing is {e forward-compatible} by default: a record whose [kind]
    this binary does not know decodes to {!Unknown}, preserving its
    payload fields verbatim for re-serialization, so old binaries can
    read (and pass through) traces written by newer ones.  Pass
    [~strict:true] to reject unknown kinds instead — the behaviour
    [rota trace validate] wants. *)

type payload =
  | Run_started of { label : string }
      (** A new engine run (or other traced scope) began; subsequent
          simulated times restart from this point. *)
  | Capacity_joined of { quantity : int; terms : Json.t }
      (** Resources joined the open system; [quantity] is the total
          usable quantity within the run's horizon.  [terms] is the
          joined slice as profile rectangles (the certificate [rect]
          list encoding), [Null] in traces from older binaries. *)
  | Admitted of { id : string; policy : string; reason : string }
  | Rejected of { id : string; policy : string; reason : string }
  | Decision of {
      id : string;
      policy : string;
      action : string;
          (** ["admit"], ["reject"], ["evict"], or ["repair"]. *)
      slug : string;
          (** Stable outcome taxonomy: {!Slug.of_reason} of the
              decision's reason, the same label the metrics counters
              use. *)
      certificate : Json.t;
          (** Serialized [Rota.Certificate.t] — the theorem evidence the
              decider actually checked — or [Null] when the decision
              carries no certificate. *)
      cid : string option;
          (** The serve daemon's correlation id for the request that
              produced this decision — the same id echoed in the wire
              reply, so a client complaint can be joined to its WAL
              record.  [None] outside the daemon and in traces written
              by older binaries (omitted on the wire when absent). *)
    }
      (** Decision provenance: every admission-control verdict (admit,
          reject, evict, repair) with its machine-checkable certificate.
          Emitted alongside the legacy {!Admitted}/{!Rejected} records,
          which remain the human-readable telling. *)
  | Shed of { id : string; slug : string; reason : string }
      (** The serve daemon refused this request {e without} deciding it —
          load shedding, not admission control.  [slug] is the stable
          overload taxonomy ({!Rota_server.Shed} mints it: ["queue-full"],
          ["predicted-delay"], ["budget-spent"]).  Telemetry only: sheds
          are never written to the WAL (nothing was decided, there is
          nothing to replay), so the event rides the tracer stream and
          the flight recorder instead. *)
  | Completed of { id : string }
  | Killed of { id : string; owed : int }
      (** Deadline kill; [owed] is the quantity still unfinished. *)
  | Fault_injected of { fault : string; quantity : int; terms : Json.t }
      (** An unannounced fault fired ([Rota_sim.Fault.kind_name]);
          [quantity] is the capacity actually lost (0 for slowdowns,
          negative for nothing — rejoins report the quantity {e
          gained}).  [terms] is the slice actually removed, as profile
          rectangles; [Null] for slowdowns/rejoins and in traces from
          older binaries. *)
  | Commitment_revoked of { id : string; quantity : int }
      (** A fault evicted this commitment from the calendar; [quantity]
          is the reservation quantity it lost. *)
  | Commitment_degraded of { id : string; extra : int; released : bool }
      (** A slowdown fault inflated this computation's remaining work by
          [extra] quantity units.  [released] records whether the engine
          also released its calendar reservation (true when the repair
          ladder will re-admit it; false — and omitted on the wire —
          when the commitment stays put). *)
  | Repaired of { id : string; rung : string; attempt : int;
                  certificate : Json.t }
      (** The repair ladder rescued the computation ([rung] is
          ["reaccommodate"] or ["migrate"]); [attempt] counts backoff
          retries before success (0 = first try).  [certificate] is the
          Theorem-3 re-admission evidence ([Null] in older traces). *)
  | Preempted of { id : string; owed : int }
      (** The repair ladder gave up and killed the victim early,
          releasing its resources; [owed] as in {!Killed}. *)
  | Anomaly of { id : string; reason : string }
      (** The engine hit an internal inconsistency while handling [id]
          and degraded (skipped the work) instead of aborting the run. *)
  | Span of {
      name : string;
      id : int;  (** Process-wide span id, starting at 1 (0 = legacy
                     record without linkage). *)
      parent : int option;  (** Id of the enclosing open span, if any. *)
      depth : int;  (** Nesting level (0 = outermost). *)
      begin_s : float;  (** Wall-clock time the span {e opened}. *)
      duration_s : float;
    }
      (** A timed scope closed.  Emitted at span {e exit}, so a parent
          span's record follows its children's; the [id]/[parent]
          linkage (and [begin_s]) lets readers rebuild the tree and
          attribute self vs total time regardless of emission order. *)
  | Metric_sample of { name : string; value : float; family : string option }
      (** Point-in-time value of one counter or gauge, emitted by the
          engine's periodic sampler so registry series become time
          series inside the trace.  [family] tags the series kind
          (["counter"] or ["gauge"]) so exporters can reconstruct a
          typed snapshot from the trace alone; [None] in traces from
          older binaries (and omitted on the wire when absent). *)
  | Hist_sample of {
      name : string;
      count : int;  (** Observations so far (cumulative). *)
      sum : float;  (** Sum of observations so far. *)
      min_v : float;
      max_v : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }
      (** Point-in-time snapshot of one histogram (count, sum, observed
          range, and estimated quantiles), emitted by the periodic
          sampler alongside {!Metric_sample} so latency series can be
          plotted over time.  Empty histograms are skipped. *)
  | Audit_divergence of {
      id : string;
      action : string;  (** The offending decision's action. *)
      of_seq : int;  (** [seq] of the decision event that diverged. *)
      message : string;  (** One auditor complaint, human-readable. *)
    }
      (** The live audit watchdog re-verified a decision certificate and
          disagreed with the decider.  Emitted back into the same trace,
          one event per complaint, right after the offending decision;
          the auditor itself ignores this kind, so re-auditing a
          watchdogged trace reproduces the original verdicts. *)
  | Unknown of { kind : string; fields : (string * Json.t) list }
      (** A kind this binary does not know (lenient mode only).
          [fields] holds every non-envelope field verbatim, so the
          record re-serializes unchanged. *)

type t = {
  seq : int;  (** Process-wide emission order, starting at 1. *)
  run : int;  (** Run id stamping this event; 0 before any run. *)
  sim : int option;  (** Simulated time (engine ticks), when meaningful. *)
  wall_s : float;  (** Wall-clock seconds (Unix epoch). *)
  payload : payload;
}

val kind : payload -> string
(** The schema's [kind] discriminator ("run-started", "admitted", ...);
    for {!Unknown} the preserved original kind. *)

val payload_fields : payload -> (string * Json.t) list
(** The payload's own JSON fields (everything {!to_json} adds beyond the
    envelope), in schema order. *)

val to_json : t -> Json.t

val of_json : ?strict:bool -> Json.t -> (t, string) result
(** [strict] (default [false]) controls unknown-kind handling: lenient
    parses them to {!Unknown}, strict errors.  Envelope fields and
    known-kind payload shapes are always checked.  Span records missing
    the linkage fields (written by older binaries) decode with [id = 0],
    no parent, and [begin_s] inferred from the emission time. *)

val to_line : t -> string
(** One JSONL line (no trailing newline). *)

val of_line : ?strict:bool -> string -> (t, string) result

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner, e.g. ["t12 admitted c3 (reservation
    committed)"]; simulated time prints as ["t-"] when absent. *)

val pp_payload : sim:int option -> Format.formatter -> payload -> unit
(** Same rendering given just a payload — the single formatting path
    that both the engine's legacy pretty-printer and the console sink
    go through. *)
