(* One slugging path for every consumer of reject reasons: the metrics
   counters (admission/reject_reason.<slug>) and the trace summaries
   bucket by the same labels, so the two tellings of a run agree. *)

let of_reason reason =
  let buf = Buffer.create (String.length reason) in
  let last_dash = ref true in
  String.iter
    (fun c ->
      let c = Char.lowercase_ascii c in
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then begin
        Buffer.add_char buf c;
        last_dash := false
      end
      else if not !last_dash then begin
        Buffer.add_char buf '-';
        last_dash := true
      end)
    reason;
  let s = Buffer.contents buf in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '-' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  let s = if String.length s > 48 then String.sub s 0 48 else s in
  (* An all-punctuation reason would otherwise yield a dangling empty
     label. *)
  if String.length s = 0 then "other" else s
