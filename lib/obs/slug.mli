(** The rejection-reason taxonomy: free text compressed into a stable
    label.

    Admission reject reasons are human-readable sentences; metrics
    counters and trace summaries both need one stable series per
    {e kind} of reason.  This is the single slugging function they
    share — lowercase alphanumerics with dash runs, capped at 48
    characters, never empty. *)

val of_reason : string -> string
(** [of_reason reason] is the stable slug (falls back to ["other"] for
    all-punctuation input). *)
