(* Incremental dashboard state for [rota top]: fold events one at a
   time (live, through a Follow cursor) or all at once ([--once]), then
   render a fixed-layout frame.  The module is pure fold + render — the
   terminal loop (polling, ANSI redraw, key handling) lives in the CLI
   so this logic is testable from a plain event list. *)

type hist_snap = {
  hs_count : int;
  hs_sum : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
  hs_max : float;
}

type t = {
  source : string;
  mutable events : int;
  mutable last_seq : int;
  mutable runs : int;
  mutable run_label : string;
  mutable last_sim : int option;
  mutable last_wall : float option;
  mutable first_wall : float option;
  mutable admitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable killed : int;
  mutable preempted : int;
  mutable repaired : int;
  mutable faults : int;
  mutable divergences : int;
  mutable shed : int;
  counters : (string, float) Hashtbl.t;  (* last metric-sample, counters *)
  gauges : (string, float) Hashtbl.t;  (* last metric-sample, gauges *)
  hists : (string, hist_snap) Hashtbl.t;  (* last hist-sample *)
  completions : (int, int) Hashtbl.t;  (* sim tick -> completions *)
  mutable max_sim : int;
}

let create ~source () =
  {
    source;
    events = 0;
    last_seq = 0;
    runs = 0;
    run_label = "";
    last_sim = None;
    last_wall = None;
    first_wall = None;
    admitted = 0;
    rejected = 0;
    completed = 0;
    killed = 0;
    preempted = 0;
    repaired = 0;
    faults = 0;
    divergences = 0;
    shed = 0;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    completions = Hashtbl.create 64;
    max_sim = 0;
  }

let step t (e : Events.t) =
  t.events <- t.events + 1;
  t.last_seq <- e.Events.seq;
  t.last_wall <- Some e.Events.wall_s;
  if t.first_wall = None then t.first_wall <- Some e.Events.wall_s;
  (match e.Events.sim with
  | Some s ->
      t.last_sim <- Some s;
      if s > t.max_sim then t.max_sim <- s
  | None -> ());
  match e.Events.payload with
  | Events.Run_started { label } ->
      t.runs <- t.runs + 1;
      t.run_label <- label
  | Events.Admitted _ -> t.admitted <- t.admitted + 1
  | Events.Rejected _ -> t.rejected <- t.rejected + 1
  | Events.Completed _ ->
      t.completed <- t.completed + 1;
      Option.iter
        (fun s ->
          Hashtbl.replace t.completions s
            (1 + Option.value (Hashtbl.find_opt t.completions s) ~default:0))
        e.Events.sim
  | Events.Killed _ -> t.killed <- t.killed + 1
  | Events.Preempted _ -> t.preempted <- t.preempted + 1
  | Events.Repaired _ -> t.repaired <- t.repaired + 1
  | Events.Fault_injected _ -> t.faults <- t.faults + 1
  | Events.Shed _ -> t.shed <- t.shed + 1
  | Events.Audit_divergence _ -> t.divergences <- t.divergences + 1
  | Events.Metric_sample { name; value; family } ->
      let tbl =
        match family with
        | Some "counter" -> t.counters
        (* Untagged samples (older traces) land with the gauges — for a
           dashboard, "last value" is the right reading either way. *)
        | Some _ | None -> t.gauges
      in
      Hashtbl.replace tbl name value
  | Events.Hist_sample { name; count; sum; min_v = _; max_v; p50; p95; p99 } ->
      Hashtbl.replace t.hists name
        {
          hs_count = count;
          hs_sum = sum;
          hs_p50 = p50;
          hs_p95 = p95;
          hs_p99 = p99;
          hs_max = max_v;
        }
  | Events.Capacity_joined _ | Events.Decision _ | Events.Commitment_revoked _
  | Events.Commitment_degraded _ | Events.Anomaly _ | Events.Span _
  | Events.Unknown _ ->
      ()

(* --- rendering ----------------------------------------------------------- *)

let is_latency name =
  let name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  String.length name > 2 && String.sub name (String.length name - 2) 2 = "_s"

(* Seconds, human scale: 12.3µs / 4.56ms / 1.23s. *)
let pp_secs v =
  if v < 0. then "-"
  else if v < 1e-3 then Printf.sprintf "%.1fµs" (v *. 1e6)
  else if v < 1. then Printf.sprintf "%.2fms" (v *. 1e3)
  else Printf.sprintf "%.2fs" v

let pp_quantity name v =
  if is_latency name then pp_secs v
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let spark_chars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                    "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                    "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* Completions per simulated tick, the whole run so far compressed into
   [cols] columns (each column sums a tick range; tallest column sets
   the scale). *)
let sparkline t cols =
  if cols <= 0 || Hashtbl.length t.completions = 0 then ""
  else begin
    let span = t.max_sim + 1 in
    let per_col = max 1 ((span + cols - 1) / cols) in
    let ncols = (span + per_col - 1) / per_col in
    let col_totals = Array.make ncols 0 in
    Hashtbl.iter
      (fun sim n ->
        let c = sim / per_col in
        if c >= 0 && c < ncols then col_totals.(c) <- col_totals.(c) + n)
      t.completions;
    let peak = Array.fold_left max 0 col_totals in
    if peak = 0 then ""
    else
      String.concat ""
        (Array.to_list
           (Array.map
              (fun n ->
                if n = 0 then " "
                else spark_chars.((n * 7 + peak - 1) / peak |> min 7)
              )
              col_totals))
  end

let sorted_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let audit_stat t name =
  match Hashtbl.find_opt t.counters name with
  | Some v -> Printf.sprintf "%.0f" v
  | None -> (
      match Hashtbl.find_opt t.gauges name with
      | Some v -> Printf.sprintf "%.0f" v
      | None -> "-")

let render ?(width = 80) ?(following = false) t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let mode = if following then "following" else "once" in
  line "rota top — %s  [%s]" t.source mode;
  let sim = match t.last_sim with Some s -> Printf.sprintf "t%d" s | None -> "t-" in
  let wall =
    match (t.first_wall, t.last_wall) with
    | Some a, Some b -> Printf.sprintf "  wall +%.1fs" (b -. a)
    | _ -> ""
  in
  line "events %d  runs %d  sim %s%s" t.events t.runs sim wall;
  if t.run_label <> "" then line "run %d: %s" t.runs t.run_label;
  line "";
  line "admitted %d  rejected %d  completed %d  killed %d  preempted %d"
    t.admitted t.rejected t.completed t.killed t.preempted;
  if t.shed > 0 then line "shed %d (load refused before deciding)" t.shed;
  if t.faults + t.repaired > 0 then
    line "faults %d  repaired %d" t.faults t.repaired;
  line "audit verified %s  skipped %s  divergent %d  lag %s"
    (audit_stat t "audit/verified")
    (audit_stat t "audit/skipped")
    t.divergences
    (audit_stat t "audit/lag");
  let spark = sparkline t (max 8 (width - 24)) in
  if spark <> "" then begin
    line "";
    line "completions/tick  %s" spark
  end;
  let hists = sorted_tbl t.hists in
  if hists <> [] then begin
    line "";
    line "%-36s %8s %10s %10s %10s %10s" "latency (last sample)" "count"
      "p50" "p95" "p99" "max";
    List.iter
      (fun (name, h) ->
        line "%-36s %8d %10s %10s %10s %10s" name h.hs_count
          (pp_quantity name h.hs_p50)
          (pp_quantity name h.hs_p95)
          (pp_quantity name h.hs_p99)
          (pp_quantity name h.hs_max))
      hists
  end;
  let scalar_section title rows =
    if rows <> [] then begin
      line "";
      line "%-44s %12s" title "value";
      List.iter
        (fun (name, v) -> line "%-44s %12s" name (pp_quantity name v))
        rows
    end
  in
  scalar_section "counters (last sample)" (sorted_tbl t.counters);
  scalar_section "gauges (last sample)" (sorted_tbl t.gauges);
  Buffer.contents buf
