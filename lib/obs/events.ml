type payload =
  | Run_started of { label : string }
  | Capacity_joined of { quantity : int; terms : Json.t }
  | Admitted of { id : string; policy : string; reason : string }
  | Rejected of { id : string; policy : string; reason : string }
  | Decision of {
      id : string;
      policy : string;
      action : string;
      slug : string;
      certificate : Json.t;
      cid : string option;
    }
  | Shed of { id : string; slug : string; reason : string }
  | Completed of { id : string }
  | Killed of { id : string; owed : int }
  | Fault_injected of { fault : string; quantity : int; terms : Json.t }
  | Commitment_revoked of { id : string; quantity : int }
  | Commitment_degraded of { id : string; extra : int; released : bool }
  | Repaired of { id : string; rung : string; attempt : int; certificate : Json.t }
  | Preempted of { id : string; owed : int }
  | Anomaly of { id : string; reason : string }
  | Span of {
      name : string;
      id : int;
      parent : int option;
      depth : int;
      begin_s : float;
      duration_s : float;
    }
  | Metric_sample of { name : string; value : float; family : string option }
  | Hist_sample of {
      name : string;
      count : int;
      sum : float;
      min_v : float;
      max_v : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }
  | Audit_divergence of {
      id : string;
      action : string;
      of_seq : int;
      message : string;
    }
  | Unknown of { kind : string; fields : (string * Json.t) list }

type t = {
  seq : int;
  run : int;
  sim : int option;
  wall_s : float;
  payload : payload;
}

let kind = function
  | Run_started _ -> "run-started"
  | Capacity_joined _ -> "capacity-joined"
  | Admitted _ -> "admitted"
  | Rejected _ -> "rejected"
  | Decision _ -> "decision"
  | Shed _ -> "shed"
  | Completed _ -> "completed"
  | Killed _ -> "killed"
  | Fault_injected _ -> "fault"
  | Commitment_revoked _ -> "revoked"
  | Commitment_degraded _ -> "degraded"
  | Repaired _ -> "repaired"
  | Preempted _ -> "preempted"
  | Anomaly _ -> "anomaly"
  | Span _ -> "span"
  | Metric_sample _ -> "metric-sample"
  | Hist_sample _ -> "hist-sample"
  | Audit_divergence _ -> "audit-divergence"
  | Unknown { kind; _ } -> kind

(* Optional payload fields (the decision-provenance additions) are
   serialized only when present, so events parsed from legacy traces —
   where the defaults kick in — re-serialize to the same line and the
   strict round-trip check keeps holding on both schema generations. *)
let opt_json name v rest = if v = Json.Null then rest else (name, v) :: rest

let payload_fields = function
  | Run_started { label } -> [ ("label", Json.String label) ]
  | Capacity_joined { quantity; terms } ->
      ("quantity", Json.Int quantity) :: opt_json "terms" terms []
  | Admitted { id; policy; reason } | Rejected { id; policy; reason } ->
      [
        ("id", Json.String id);
        ("policy", Json.String policy);
        ("reason", Json.String reason);
      ]
  | Decision { id; policy; action; slug; certificate; cid } ->
      ("id", Json.String id)
      :: ("policy", Json.String policy)
      :: ("action", Json.String action)
      :: ("slug", Json.String slug)
      :: opt_json "certificate" certificate
           (opt_json "cid"
              (match cid with Some c -> Json.String c | None -> Json.Null)
              [])
  | Shed { id; slug; reason } ->
      [
        ("id", Json.String id);
        ("slug", Json.String slug);
        ("reason", Json.String reason);
      ]
  | Completed { id } -> [ ("id", Json.String id) ]
  | Killed { id; owed } -> [ ("id", Json.String id); ("owed", Json.Int owed) ]
  | Fault_injected { fault; quantity; terms } ->
      ("fault", Json.String fault)
      :: ("quantity", Json.Int quantity)
      :: opt_json "terms" terms []
  | Commitment_revoked { id; quantity } ->
      [ ("id", Json.String id); ("quantity", Json.Int quantity) ]
  | Commitment_degraded { id; extra; released } ->
      ("id", Json.String id)
      :: ("extra", Json.Int extra)
      :: (if released then [ ("released", Json.Bool true) ] else [])
  | Repaired { id; rung; attempt; certificate } ->
      ("id", Json.String id)
      :: ("rung", Json.String rung)
      :: ("attempt", Json.Int attempt)
      :: opt_json "certificate" certificate []
  | Preempted { id; owed } ->
      [ ("id", Json.String id); ("owed", Json.Int owed) ]
  | Anomaly { id; reason } ->
      [ ("id", Json.String id); ("reason", Json.String reason) ]
  | Span { name; id; parent; depth; begin_s; duration_s } ->
      [
        ("name", Json.String name);
        ("id", Json.Int id);
        ("parent", match parent with Some p -> Json.Int p | None -> Json.Null);
        ("depth", Json.Int depth);
        ("begin_s", Json.Float begin_s);
        ("duration_s", Json.Float duration_s);
      ]
  | Metric_sample { name; value; family } ->
      ("name", Json.String name)
      :: ("value", Json.Float value)
      :: opt_json "family"
           (match family with Some f -> Json.String f | None -> Json.Null)
           []
  | Hist_sample { name; count; sum; min_v; max_v; p50; p95; p99 } ->
      [
        ("name", Json.String name);
        ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("min", Json.Float min_v);
        ("max", Json.Float max_v);
        ("p50", Json.Float p50);
        ("p95", Json.Float p95);
        ("p99", Json.Float p99);
      ]
  | Audit_divergence { id; action; of_seq; message } ->
      [
        ("id", Json.String id);
        ("action", Json.String action);
        ("of_seq", Json.Int of_seq);
        ("message", Json.String message);
      ]
  | Unknown { kind = _; fields } -> fields

let to_json e =
  Json.Obj
    ([
       ("seq", Json.Int e.seq);
       ("run", Json.Int e.run);
       ("sim", match e.sim with Some t -> Json.Int t | None -> Json.Null);
       ("wall_s", Json.Float e.wall_s);
       ("kind", Json.String (kind e.payload));
     ]
    @ payload_fields e.payload)

let ( let* ) = Result.bind

let field name decode json =
  match Json.member name json with
  | Some v -> decode v
  | None -> Error (Printf.sprintf "missing field %S" name)

(* Fields the envelope owns; everything else belongs to the payload
   (used to preserve unknown kinds verbatim). *)
let envelope_keys = [ "seq"; "run"; "sim"; "wall_s"; "kind" ]

(* Decision-provenance fields arrived after the first schema revision;
   traces written by older binaries omit them.  They default ([Null],
   [false]) rather than error, mirroring the span-linkage fields. *)
let opt_field name json =
  Ok (Option.value (Json.member name json) ~default:Json.Null)

let bool_field name json =
  match Json.member name json with
  | None -> Ok false
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a boolean" name)

let payload_of_json ~strict ~wall_s json =
  let* k = field "kind" Json.to_str json in
  match k with
  | "run-started" ->
      let* label = field "label" Json.to_str json in
      Ok (Run_started { label })
  | "capacity-joined" ->
      let* quantity = field "quantity" Json.to_int json in
      let* terms = opt_field "terms" json in
      Ok (Capacity_joined { quantity; terms })
  | "decision" ->
      let* id = field "id" Json.to_str json in
      let* policy = field "policy" Json.to_str json in
      let* action = field "action" Json.to_str json in
      let* slug = field "slug" Json.to_str json in
      let* certificate = opt_field "certificate" json in
      (* The serve daemon's correlation id arrived with the serving
         telemetry plane; traces written by older binaries omit it. *)
      let* cid =
        match Json.member "cid" json with
        | None | Some Json.Null -> Ok None
        | Some v -> Result.map Option.some (Json.to_str v)
      in
      Ok (Decision { id; policy; action; slug; certificate; cid })
  | "shed" ->
      let* id = field "id" Json.to_str json in
      let* slug = field "slug" Json.to_str json in
      let* reason = field "reason" Json.to_str json in
      Ok (Shed { id; slug; reason })
  | "admitted" | "rejected" ->
      let* id = field "id" Json.to_str json in
      let* policy = field "policy" Json.to_str json in
      let* reason = field "reason" Json.to_str json in
      Ok
        (if k = "admitted" then Admitted { id; policy; reason }
         else Rejected { id; policy; reason })
  | "completed" ->
      let* id = field "id" Json.to_str json in
      Ok (Completed { id })
  | "killed" ->
      let* id = field "id" Json.to_str json in
      let* owed = field "owed" Json.to_int json in
      Ok (Killed { id; owed })
  | "fault" ->
      let* fault = field "fault" Json.to_str json in
      let* quantity = field "quantity" Json.to_int json in
      let* terms = opt_field "terms" json in
      Ok (Fault_injected { fault; quantity; terms })
  | "revoked" ->
      let* id = field "id" Json.to_str json in
      let* quantity = field "quantity" Json.to_int json in
      Ok (Commitment_revoked { id; quantity })
  | "degraded" ->
      let* id = field "id" Json.to_str json in
      let* extra = field "extra" Json.to_int json in
      let* released = bool_field "released" json in
      Ok (Commitment_degraded { id; extra; released })
  | "repaired" ->
      let* id = field "id" Json.to_str json in
      let* rung = field "rung" Json.to_str json in
      let* attempt = field "attempt" Json.to_int json in
      let* certificate = opt_field "certificate" json in
      Ok (Repaired { id; rung; attempt; certificate })
  | "preempted" ->
      let* id = field "id" Json.to_str json in
      let* owed = field "owed" Json.to_int json in
      Ok (Preempted { id; owed })
  | "anomaly" ->
      let* id = field "id" Json.to_str json in
      let* reason = field "reason" Json.to_str json in
      Ok (Anomaly { id; reason })
  | "span" ->
      let* name = field "name" Json.to_str json in
      let* depth = field "depth" Json.to_int json in
      let* duration_s = field "duration_s" Json.to_float json in
      (* Linkage fields arrived after the first schema revision; traces
         written by older binaries omit them.  Default to the legacy
         "no linkage" encoding: id 0, no parent, begin inferred from
         the emission (= exit) time. *)
      let* id =
        match Json.member "id" json with
        | None -> Ok 0
        | Some v -> Json.to_int v
      in
      let* parent =
        match Json.member "parent" json with
        | None | Some Json.Null -> Ok None
        | Some v -> Result.map Option.some (Json.to_int v)
      in
      let* begin_s =
        match Json.member "begin_s" json with
        | None -> Ok (wall_s -. duration_s)
        | Some v -> Json.to_float v
      in
      Ok (Span { name; id; parent; depth; begin_s; duration_s })
  | "metric-sample" ->
      let* name = field "name" Json.to_str json in
      let* value = field "value" Json.to_float json in
      (* The family tag (counter vs gauge) arrived with the OpenMetrics
         exporter; traces written by older binaries omit it. *)
      let* family =
        match Json.member "family" json with
        | None | Some Json.Null -> Ok None
        | Some v -> Result.map Option.some (Json.to_str v)
      in
      Ok (Metric_sample { name; value; family })
  | "hist-sample" ->
      let* name = field "name" Json.to_str json in
      let* count = field "count" Json.to_int json in
      let* sum = field "sum" Json.to_float json in
      let* min_v = field "min" Json.to_float json in
      let* max_v = field "max" Json.to_float json in
      let* p50 = field "p50" Json.to_float json in
      let* p95 = field "p95" Json.to_float json in
      let* p99 = field "p99" Json.to_float json in
      Ok (Hist_sample { name; count; sum; min_v; max_v; p50; p95; p99 })
  | "audit-divergence" ->
      let* id = field "id" Json.to_str json in
      let* action = field "action" Json.to_str json in
      let* of_seq = field "of_seq" Json.to_int json in
      let* message = field "message" Json.to_str json in
      Ok (Audit_divergence { id; action; of_seq; message })
  | k ->
      if strict then Error (Printf.sprintf "unknown event kind %S" k)
      else
        let fields =
          match json with
          | Json.Obj fields ->
              List.filter (fun (n, _) -> not (List.mem n envelope_keys)) fields
          | _ -> []
        in
        Ok (Unknown { kind = k; fields })

let of_json ?(strict = false) json =
  let* seq = field "seq" Json.to_int json in
  let* run = field "run" Json.to_int json in
  let* sim =
    match Json.member "sim" json with
    | Some Json.Null | None -> Ok None
    | Some v -> Result.map Option.some (Json.to_int v)
  in
  let* wall_s = field "wall_s" Json.to_float json in
  let* payload = payload_of_json ~strict ~wall_s json in
  Ok { seq; run; sim; wall_s; payload }

let to_line e = Json.to_string (to_json e)

let of_line ?strict line =
  let* json = Json.parse line in
  of_json ?strict json

let pp_payload ~sim ppf payload =
  let pp_sim ppf = function
    | Some t -> Format.fprintf ppf "t%d" t
    | None -> Format.pp_print_string ppf "t-"
  in
  match payload with
  | Run_started { label } ->
      Format.fprintf ppf "%a run started: %s" pp_sim sim label
  | Capacity_joined { quantity; terms = _ } ->
      Format.fprintf ppf "%a capacity +%d" pp_sim sim quantity
  | Admitted { id; policy = _; reason = _ } ->
      Format.fprintf ppf "%a admitted %s" pp_sim sim id
  | Rejected { id; policy = _; reason } ->
      Format.fprintf ppf "%a rejected %s (%s)" pp_sim sim id reason
  | Decision { id; policy = _; action; slug; certificate; cid = _ } ->
      Format.fprintf ppf "%a decision %s %s [%s]%s" pp_sim sim action id slug
        (if certificate = Json.Null then "" else " certified")
  | Shed { id; slug; reason } ->
      Format.fprintf ppf "%a shed %s [%s]: %s" pp_sim sim id slug reason
  | Completed { id } -> Format.fprintf ppf "%a completed %s" pp_sim sim id
  | Killed { id; owed } ->
      Format.fprintf ppf "%a killed %s (owed %d)" pp_sim sim id owed
  | Fault_injected { fault; quantity; terms = _ } ->
      (* Rejoins bring capacity back; every other kind takes it away.
         Slowdowns move work, not capacity (quantity 0): no parens. *)
      if quantity = 0 then Format.fprintf ppf "%a fault %s" pp_sim sim fault
      else
        let sign = if String.equal fault "rejoin" then '+' else '-' in
        Format.fprintf ppf "%a fault %s (%c%d)" pp_sim sim fault sign quantity
  | Commitment_revoked { id; quantity } ->
      Format.fprintf ppf "%a revoked %s (lost %d)" pp_sim sim id quantity
  | Commitment_degraded { id; extra; released = _ } ->
      Format.fprintf ppf "%a degraded %s (+%d work)" pp_sim sim id extra
  | Repaired { id; rung; attempt; certificate = _ } ->
      Format.fprintf ppf "%a repaired %s via %s (attempt %d)" pp_sim sim id
        rung attempt
  | Preempted { id; owed } ->
      Format.fprintf ppf "%a preempted %s (owed %d)" pp_sim sim id owed
  | Anomaly { id; reason } ->
      Format.fprintf ppf "%a anomaly %s: %s" pp_sim sim id reason
  | Span { name; depth; duration_s; _ } ->
      Format.fprintf ppf "%a span %s%s %.6fs" pp_sim sim
        (String.make (2 * depth) ' ')
        name duration_s
  | Metric_sample { name; value; family = _ } ->
      Format.fprintf ppf "%a sample %s=%g" pp_sim sim name value
  | Hist_sample { name; count; p50; p95; p99; _ } ->
      Format.fprintf ppf "%a hist %s n=%d p50=%g p95=%g p99=%g" pp_sim sim
        name count p50 p95 p99
  | Audit_divergence { id; action; of_seq; message } ->
      Format.fprintf ppf "%a AUDIT DIVERGENCE %s %s (seq %d): %s" pp_sim sim
        action id of_seq message
  | Unknown { kind; _ } -> Format.fprintf ppf "%a ? %s" pp_sim sim kind

let pp ppf e = pp_payload ~sim:e.sim ppf e.payload
