(** The process's own resource footprint as registry series.

    Each {!update} folds the [Gc.quick_stat] delta since the previous
    call into [runtime/*] counters and gauges, so the periodic trace
    sampler ({!Tracer.sample_metrics}) and the OpenMetrics exporter see
    the engine's allocation and collection behaviour next to the
    admission series it is paying for:

    - [runtime/minor_words], [runtime/major_words],
      [runtime/promoted_words] — words allocated/promoted since the
      first update (counters; deltas accumulated per call);
    - [runtime/minor_collections], [runtime/major_collections],
      [runtime/compactions] — GC cycles since the first update;
    - [runtime/heap_words], [runtime/top_heap_words] — current and peak
      major-heap size (gauges);
    - [runtime/wall_us_per_tick] — wall-clock microseconds per simulated
      tick between the two most recent updates that both carried a
      [sim] stamp (gauge): the wall-vs-sim drift an overloaded engine
      shows first.

    Handles register lazily on the first {!update}, so processes that
    never sample never see [runtime/*] rows.  A no-op (beyond one flag
    read) while the metrics registry is disabled. *)

val update : ?sim:int -> unit -> unit
(** Take a [Gc.quick_stat] sample and fold the delta into the registry.
    The first call only establishes the baseline. *)

val reset : unit -> unit
(** Forget the baseline (the next {!update} starts a fresh delta
    window).  Test helper; also called between engine runs so drift
    never spans runs. *)
