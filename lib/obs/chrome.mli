(** Chrome trace-event JSON export (array form) — [rota trace export
    --format chrome].

    The output loads directly in Perfetto (ui.perfetto.dev) or
    chrome://tracing.  Each engine run becomes a process named by its
    run-started label; spans become complete ("X") slices positioned by
    begin timestamp and duration with the id/parent linkage in [args];
    instantaneous engine events become instant ("i") marks; metric
    samples become counter ("C") tracks.  Timestamps are microseconds
    relative to the earliest event.  {!Events.Unknown} records are
    skipped. *)

val export : Events.t list -> Json.t
(** The trace-event array as a JSON value ([Json.List]). *)

val to_string : Events.t list -> string
(** Compact single-line rendering of {!export}. *)
