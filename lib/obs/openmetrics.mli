(** OpenMetrics / Prometheus text exposition of the metrics registry —
    the scrape surface a [rota serve] endpoint (or a file-based scraper)
    reads.

    Registry names map into the OpenMetrics alphabet mechanically: the
    trailing [".slug"] of a name becomes a [slug="..."] label (the same
    per-policy / per-reason taxonomy the counters already use, so
    ["admission/decision_s.rota"] renders as
    [admission_decision_s_bucket{slug="rota",le="..."}]), every other
    character outside [[a-zA-Z0-9_:]] becomes ['_'], counters gain the
    [_total] suffix, and histograms render their cumulative buckets plus
    [_sum]/[_count].  Output always ends with the [# EOF] terminator.

    If two registry series of different metric types collapse onto the
    same family name, the later one is renamed with its type appended
    ([x] and gauge [x] → [x] and [x_gauge]) so a family is never
    declared twice. *)

val render : Metrics.view -> string
(** Render a registry snapshot: counters and gauges at their current
    values, histograms with cumulative buckets ([+Inf] == [_count]).
    An empty registry renders as just ["# EOF\n"]. *)

val render_events : Events.t list -> string
(** Reconstruct a scrape from a finished trace: the last
    [metric-sample] per series (typed by its [family] tag; untagged
    samples from older traces render as gauges) and the last
    [hist-sample] per histogram.  The trace does not carry bucket
    boundaries, so histograms come back as OpenMetrics {e summaries}
    (quantile labels) rather than bucketed histograms. *)

val write_file : string -> string -> unit
(** [write_file path contents] writes atomically ([path ^ ".tmp"] then
    rename), so a concurrent scraper never reads a half-written file. *)

val write_snapshot : string -> unit
(** [write_file path (render (Metrics.snapshot ()))]. *)

val snapshot_sink : ?every:int -> string -> Sink.t
(** A sink that rewrites [path] with a fresh registry snapshot every
    [every] events it observes (default 1000, clamped to ≥ 1) and once
    more on close — tee it after the trace sink to get a periodically
    refreshed scrape file during a run.  The events themselves are only
    counted, never written. *)

val lint : string -> (unit, string) result
(** Validate rendered text: line grammar (names, label escaping,
    values), a single [# TYPE] per family, the [# EOF] terminator, and
    the histogram laws scrapers rely on — cumulative bucket counts
    never decrease, and the [le="+Inf"] bucket exists and equals
    [_count], per label set.  Returns the first violation found. *)
