(** ASCII Gantt rendering of a telemetry event stream — [rota trace
    timeline].

    One section per run, one row per computation in arrival order, the
    horizontal axis in simulated time scaled to [width] columns.  Each
    row shows the lifecycle arrival→admit→run→complete/kill ([A], [=],
    [C]/[X]); rejected computations show a lone [x] at arrival, and a
    capacity row marks resource joins ([+]) with their quantities.  A
    legend line closes the rendering. *)

val render : ?width:int -> Events.t list -> string
(** [width] (default 60, minimum 10) is the number of columns the
    simulated horizon is scaled onto.  The horizon is taken from the
    run label's [horizon=] token when present, else from the largest
    simulated time seen in the run. *)
