type error = { line : int; message : string }

let pp_error ppf e =
  if e.line = 0 then Format.pp_print_string ppf e.message
  else Format.fprintf ppf "line %d: %s" e.line e.message

type tail = Complete | Truncated of { line : int; bytes : int }

let pp_tail ppf = function
  | Complete -> Format.pp_print_string ppf "complete"
  | Truncated { line; bytes } ->
      Format.fprintf ppf "truncated final line %d (%d bytes)" line bytes

(* --- raw line scanning --------------------------------------------------- *)

(* Split [len] fresh bytes of [buf] into lines, feeding each complete
   (newline-terminated) line — with [pending] as its accumulated prefix
   from earlier chunks — to [f]; the unterminated remainder stays in
   [pending] for the next chunk (or the caller's truncation verdict). *)
let feed ~pending ~buf ~len ~f acc line =
  let rec go acc line start =
    if start >= len then Ok (acc, line)
    else
      match Bytes.index_from_opt buf start '\n' with
      | Some i when i < len ->
          Buffer.add_subbytes pending buf start (i - start);
          let l = Buffer.contents pending in
          Buffer.clear pending;
          (match f acc line l with
          | Ok acc -> go acc (line + 1) (i + 1)
          | Error _ as e -> e)
      | _ ->
          Buffer.add_subbytes pending buf start (len - start);
          Ok (acc, line)
  in
  go acc line 0

(* Fold [f] over every newline-terminated line; returns the final
   unterminated line, if any, with its 1-based line number.  [input_line]
   cannot tell a terminated final line from a crash-cut one, so the file
   is scanned in binary chunks instead. *)
let fold_raw path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error { line = 0; message = msg }
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let buf = Bytes.create 65536 in
      let pending = Buffer.create 256 in
      let rec loop acc line =
        match input ic buf 0 (Bytes.length buf) with
        | 0 ->
            let rest = Buffer.contents pending in
            Ok (acc, if rest = "" then None else Some (line, rest))
        | len -> (
            match feed ~pending ~buf ~len ~f acc line with
            | Ok (acc, line) -> loop acc line
            | Error _ as e -> e)
      in
      loop init 1

let parse_line ?strict ~f acc n line =
  (* Tolerate blank lines (text editors add trailing ones). *)
  if String.trim line = "" then Ok acc
  else
    match Events.of_line ?strict line with
    | Ok e -> Ok (f acc e)
    | Error message -> Error { line = n; message }

(* --- binary traces -------------------------------------------------------- *)

(* The binary reader mirrors {!fold_file}'s contract with records in
   place of lines: "line" numbers are 1-based record ordinals, a
   crash-cut final record becomes the {!Truncated} tail (everything
   before it still delivered), and a {e complete} record that fails to
   decode is an error.  [strict] keeps its JSONL meaning — reject
   unknown event kinds — which in the binary format arrive pre-parsed
   as {!Events.Unknown} records rather than unrecognized kind strings. *)
let fold_binary ?(strict = false) path ~init ~f =
  match open_in_bin path with
  | exception Sys_error msg -> Error { line = 0; message = msg }
  | ic -> (
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      match Binary.read_header ic with
      | Error message -> Error { line = 0; message }
      | Ok () ->
          let rec loop acc n =
            match Binary.read_item ic with
            | Binary.Eof -> Ok (acc, Complete)
            | Binary.Cut bytes -> Ok (acc, Truncated { line = n; bytes })
            | Binary.Malformed message -> Error { line = n; message }
            | Binary.Event e -> (
                match e.Events.payload with
                | Events.Unknown { kind; _ } when strict ->
                    Error
                      {
                        line = n;
                        message = Printf.sprintf "unknown event kind %S" kind;
                      }
                | _ -> loop (f acc e) (n + 1))
          in
          loop init 1)

let fold_file ?strict path ~init ~f =
  if Binary.file_is_binary path then fold_binary ?strict path ~init ~f
  else
  match fold_raw path ~init ~f:(parse_line ?strict ~f) with
  | Error _ as e -> e
  | Ok (acc, None) -> Ok (acc, Complete)
  | Ok (acc, Some (n, rest)) -> (
      (* The final line lacks its newline: a crash-interrupted write.
         If the fragment happens to parse it lost nothing; otherwise
         report the cut as data, not as a malformed trace — everything
         up to it is still good.  A *terminated* malformed line, final
         or not, stays an error (the writer finished it that way). *)
      if String.trim rest = "" then Ok (acc, Complete)
      else
        match Events.of_line ?strict rest with
        | Ok e -> Ok (f acc e, Complete)
        | Error _ ->
            Ok (acc, Truncated { line = n; bytes = String.length rest }))

let read_file ?strict path =
  Result.map
    (fun (acc, tail) -> (List.rev acc, tail))
    (fold_file ?strict path ~init:[] ~f:(fun acc e -> e :: acc))

(* --- following a growing file ------------------------------------------- *)

module Follow = struct
  (* Which codec the growing file speaks.  [Undetected] covers a file
     still shorter than the binary header: the bytes on disk so far are
     a prefix of {!Binary.header} (or nothing at all), so the format is
     decided on a later poll, once enough bytes land to tell a ROTB
     header from a JSONL line. *)
  type format_mode = Undetected | Jsonl | Binary_records

  type cursor = {
    ic : in_channel;
    buf : Bytes.t;
    pending : Buffer.t;  (* JSONL: unterminated tail seen so far *)
    mutable line : int;  (* 1-based line / record ordinal being assembled *)
    strict : bool option;
    mutable mode : format_mode;
    mutable dangling : int;  (* binary: bytes of the cut record at EOF *)
  }

  (* Decide the format from the bytes on disk so far.  JSONL events
     always start with '{', so any first bytes that are not a prefix of
     the binary header settle the question immediately; a genuine ROTB
     header is consumed (the record loop starts right after it).  The
     position is left at 0 in every other case. *)
  let detect c =
    let len = in_channel_length c.ic in
    if len = 0 then Ok ()
    else begin
      let header_len = String.length Binary.header in
      let n = min len header_len in
      seek_in c.ic 0;
      let first = really_input_string c.ic n in
      if len >= header_len then
        if String.sub first 0 (String.length Binary.magic) = Binary.magic
        then begin
          seek_in c.ic 0;
          match Binary.read_header c.ic with
          | Ok () ->
              c.mode <- Binary_records;
              Ok ()
          | Error message -> Error { line = 0; message }
        end
        else begin
          seek_in c.ic 0;
          c.mode <- Jsonl;
          Ok ()
        end
      else if String.equal first (String.sub Binary.header 0 n) then begin
        seek_in c.ic 0;
        Ok () (* still ambiguous: wait for the rest of the header *)
      end
      else begin
        seek_in c.ic 0;
        c.mode <- Jsonl;
        Ok ()
      end
    end

  let open_file ?strict path =
    match open_in_bin path with
    | exception Sys_error msg -> Error { line = 0; message = msg }
    | ic -> (
        let c =
          {
            ic;
            buf = Bytes.create 65536;
            pending = Buffer.create 256;
            line = 1;
            strict;
            mode = Undetected;
            dangling = 0;
          }
        in
        match detect c with
        | Ok () -> Ok c
        | Error e ->
            close_in_noerr ic;
            Error e)

  let close c = close_in_noerr c.ic

  (* Reading a regular file at EOF returns 0 bytes but leaves the
     position; once the writer appends more, the next [poll] picks up
     exactly where this one stopped.  A line cut mid-write stays in
     [pending] — it is never parsed until its newline arrives, so a
     poll racing the writer cannot misread a fragment as an event. *)
  let poll_jsonl c =
    let f acc n line =
      parse_line ?strict:c.strict ~f:(fun acc e -> e :: acc) acc n line
    in
    let rec loop acc =
      match input c.ic c.buf 0 (Bytes.length c.buf) with
      | 0 -> Ok (List.rev acc)
      | len -> (
          match feed ~pending:c.pending ~buf:c.buf ~len ~f acc c.line with
          | Ok (acc, line) ->
              c.line <- line;
              loop acc
          | Error _ as e -> e)
    in
    loop []

  (* The binary analogue of the pending-line buffer is a seek: a record
     cut mid-write ({!Binary.Cut}) rewinds the channel to the record's
     first byte, so the next poll re-reads it whole once the writer
     finishes it.  Only complete records are ever delivered — the
     length prefix makes "complete" unambiguous, so racing the writer
     cannot misread a fragment. *)
  let poll_binary c =
    let rec loop acc =
      let start = pos_in c.ic in
      match Binary.read_item c.ic with
      | Binary.Eof ->
          c.dangling <- 0;
          Ok (List.rev acc)
      | Binary.Cut bytes ->
          seek_in c.ic start;
          c.dangling <- bytes;
          Ok (List.rev acc)
      | Binary.Malformed message -> Error { line = c.line; message }
      | Binary.Event e -> (
          match e.Events.payload with
          | Events.Unknown { kind; _ } when c.strict = Some true ->
              Error
                {
                  line = c.line;
                  message = Printf.sprintf "unknown event kind %S" kind;
                }
          | _ ->
              c.line <- c.line + 1;
              loop (e :: acc))
    in
    loop []

  let rec poll c =
    match c.mode with
    | Jsonl -> poll_jsonl c
    | Binary_records -> poll_binary c
    | Undetected -> (
        match detect c with
        | Error _ as e -> e
        | Ok () -> if c.mode = Undetected then Ok [] else poll c)

  let pending_bytes c =
    match c.mode with
    | Jsonl -> Buffer.length c.pending
    | Binary_records -> c.dangling
    | Undetected -> in_channel_length c.ic
end

(* --- validation --------------------------------------------------------- *)

type validation = { events : int; runs : int; errors : string list }

let valid v = v.errors = []

type vstate = {
  mutable n_events : int;
  mutable n_runs : int;
  mutable last_seq : int option;
  last_sim : (int, int) Hashtbl.t;  (* run -> last non-span sim *)
  span_ids : (int, unit) Hashtbl.t;
  mutable parents : (int * int) list;  (* (line, parent id) to resolve *)
  mutable errs : int;  (* total, including suppressed *)
  mutable messages : string list;  (* newest first, capped *)
}

let validate_file ?(max_errors = 20) path =
  let st =
    {
      n_events = 0;
      n_runs = 0;
      last_seq = None;
      last_sim = Hashtbl.create 8;
      span_ids = Hashtbl.create 64;
      parents = [];
      errs = 0;
      messages = [];
    }
  in
  let report line fmt =
    Printf.ksprintf
      (fun msg ->
        st.errs <- st.errs + 1;
        if st.errs <= max_errors then
          st.messages <-
            (if line = 0 then msg else Printf.sprintf "line %d: %s" line msg)
            :: st.messages)
      fmt
  in
  let is_binary = Binary.file_is_binary path in
  (* Round-trip through whichever codec the file uses: re-serializing
     and re-parsing must reproduce the event exactly (the codec's
     contract). *)
  let roundtrip =
    if is_binary then Binary.roundtrip
    else fun e -> Events.of_line ~strict:true (Events.to_line e)
  in
  let check_event n (e : Events.t) =
    st.n_events <- st.n_events + 1;
    (match roundtrip e with
    | Ok e' when e' = e -> ()
    | Ok _ -> report n "event does not round-trip through the codec"
    | Error msg -> report n "re-serialized event fails to parse: %s" msg);
    (match st.last_seq with
    | Some prev when e.Events.seq <= prev ->
        report n "seq %d not greater than previous %d" e.Events.seq prev
    | Some _ | None -> ());
    st.last_seq <- Some e.Events.seq;
    match e.Events.payload with
    | Events.Run_started _ -> st.n_runs <- st.n_runs + 1
    | Events.Span { id; parent; _ } ->
        if id <> 0 then begin
          if Hashtbl.mem st.span_ids id then
            report n "duplicate span id %d" id
          else Hashtbl.replace st.span_ids id ()
        end;
        Option.iter (fun p -> st.parents <- (n, p) :: st.parents) parent
    | _ -> (
        (* Within one run, non-span simulated times are nondecreasing. *)
        match e.Events.sim with
        | None -> ()
        | Some t ->
            (match Hashtbl.find_opt st.last_sim e.Events.run with
            | Some prev when t < prev ->
                report n "run %d: sim time %d after %d" e.Events.run t prev
            | Some _ | None -> ());
            Hashtbl.replace st.last_sim e.Events.run t)
  in
  let check acc n line =
    (if String.trim line <> "" then
       match Events.of_line ~strict:true line with
       | Ok e -> check_event n e
       | Error msg -> report n "%s" msg);
    Ok acc
  in
  (if is_binary then (
     (* Unknown kinds surface as pre-parsed {!Events.Unknown} records
        (the tag survives re-encoding, so they round-trip); they are
        flagged like an unknown kind string in strict JSONL parsing.
        A malformed complete record is corruption — record framing past
        it cannot be trusted, so scanning stops there. *)
     match open_in_bin path with
     | exception Sys_error msg -> report 0 "%s" msg
     | ic ->
         Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
         (match Binary.read_header ic with
         | Error msg -> report 0 "%s" msg
         | Ok () ->
             let rec loop n =
               match Binary.read_item ic with
               | Binary.Eof -> ()
               | Binary.Cut bytes ->
                   report n "truncated final record (%d bytes)" bytes
               | Binary.Malformed msg -> report n "%s" msg
               | Binary.Event e ->
                   (match e.Events.payload with
                   | Events.Unknown { kind; _ } ->
                       report n "unknown event kind %S" kind
                   | _ -> ());
                   check_event n e;
                   loop (n + 1)
             in
             loop 1))
   else
     match fold_raw path ~init:() ~f:check with
     | Ok ((), None) -> ()
     | Ok ((), Some (n, rest)) ->
         (* Validation is a contract check: a crash-cut final line keeps
            the prefix valid but is still flagged, mirroring
            {!fold_file}'s parseable-fragment tolerance. *)
         if String.trim rest <> "" then (
           match Events.of_line ~strict:true rest with
           | Ok e -> check_event n e
           | Error _ ->
               report n "truncated final line (%d bytes)" (String.length rest))
     | Error e -> report e.line "%s" e.message);
  (* Parent spans are emitted after their children, so resolution runs
     once the whole file has been seen. *)
  List.iter
    (fun (n, p) ->
      if not (Hashtbl.mem st.span_ids p) then
        report n "span parent id %d does not resolve" p)
    (List.rev st.parents);
  let messages = List.rev st.messages in
  let messages =
    if st.errs > max_errors then
      messages
      @ [ Printf.sprintf "... and %d more errors" (st.errs - max_errors) ]
    else messages
  in
  { events = st.n_events; runs = st.n_runs; errors = messages }
