type error = { line : int; message : string }

let pp_error ppf e =
  if e.line = 0 then Format.pp_print_string ppf e.message
  else Format.fprintf ppf "line %d: %s" e.line e.message

let fold_lines path ~init ~f =
  match open_in path with
  | exception Sys_error msg -> Error { line = 0; message = msg }
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec loop acc n =
        match input_line ic with
        | exception End_of_file -> Ok acc
        | line -> (
            match f acc n line with
            | Ok acc -> loop acc (n + 1)
            | Error _ as e -> e)
      in
      loop init 1

let fold_file ?strict path ~init ~f =
  fold_lines path ~init ~f:(fun acc n line ->
      (* Tolerate a trailing blank line (text editors add them). *)
      if String.trim line = "" then Ok acc
      else
        match Events.of_line ?strict line with
        | Ok e -> Ok (f acc e)
        | Error message -> Error { line = n; message })

let read_file ?strict path =
  Result.map List.rev
    (fold_file ?strict path ~init:[] ~f:(fun acc e -> e :: acc))

(* --- validation --------------------------------------------------------- *)

type validation = { events : int; runs : int; errors : string list }

let valid v = v.errors = []

type vstate = {
  mutable n_events : int;
  mutable n_runs : int;
  mutable last_seq : int option;
  last_sim : (int, int) Hashtbl.t;  (* run -> last non-span sim *)
  span_ids : (int, unit) Hashtbl.t;
  mutable parents : (int * int) list;  (* (line, parent id) to resolve *)
  mutable errs : int;  (* total, including suppressed *)
  mutable messages : string list;  (* newest first, capped *)
}

let validate_file ?(max_errors = 20) path =
  let st =
    {
      n_events = 0;
      n_runs = 0;
      last_seq = None;
      last_sim = Hashtbl.create 8;
      span_ids = Hashtbl.create 64;
      parents = [];
      errs = 0;
      messages = [];
    }
  in
  let report line fmt =
    Printf.ksprintf
      (fun msg ->
        st.errs <- st.errs + 1;
        if st.errs <= max_errors then
          st.messages <-
            (if line = 0 then msg else Printf.sprintf "line %d: %s" line msg)
            :: st.messages)
      fmt
  in
  let check_event n (e : Events.t) =
    st.n_events <- st.n_events + 1;
    (* Round-trip: re-serializing and re-parsing must reproduce the
       event exactly (the codec's contract). *)
    (match Events.of_line ~strict:true (Events.to_line e) with
    | Ok e' when e' = e -> ()
    | Ok _ -> report n "event does not round-trip through the codec"
    | Error msg -> report n "re-serialized event fails to parse: %s" msg);
    (match st.last_seq with
    | Some prev when e.Events.seq <= prev ->
        report n "seq %d not greater than previous %d" e.Events.seq prev
    | Some _ | None -> ());
    st.last_seq <- Some e.Events.seq;
    match e.Events.payload with
    | Events.Run_started _ -> st.n_runs <- st.n_runs + 1
    | Events.Span { id; parent; _ } ->
        if id <> 0 then begin
          if Hashtbl.mem st.span_ids id then
            report n "duplicate span id %d" id
          else Hashtbl.replace st.span_ids id ()
        end;
        Option.iter (fun p -> st.parents <- (n, p) :: st.parents) parent
    | _ -> (
        (* Within one run, non-span simulated times are nondecreasing. *)
        match e.Events.sim with
        | None -> ()
        | Some t ->
            (match Hashtbl.find_opt st.last_sim e.Events.run with
            | Some prev when t < prev ->
                report n "run %d: sim time %d after %d" e.Events.run t prev
            | Some _ | None -> ());
            Hashtbl.replace st.last_sim e.Events.run t)
  in
  (match
     fold_lines path ~init:() ~f:(fun () n line ->
         (if String.trim line <> "" then
            match Events.of_line ~strict:true line with
            | Ok e -> check_event n e
            | Error msg -> report n "%s" msg);
         Ok ())
   with
  | Ok () -> ()
  | Error e -> report e.line "%s" e.message);
  (* Parent spans are emitted after their children, so resolution runs
     once the whole file has been seen. *)
  List.iter
    (fun (n, p) ->
      if not (Hashtbl.mem st.span_ids p) then
        report n "span parent id %d does not resolve" p)
    (List.rev st.parents);
  let messages = List.rev st.messages in
  let messages =
    if st.errs > max_errors then
      messages
      @ [ Printf.sprintf "... and %d more errors" (st.errs - max_errors) ]
    else messages
  in
  { events = st.n_events; runs = st.n_runs; errors = messages }
