(** Compact binary trace codec — the length-prefixed alternative to the
    JSONL wire format, selected by [--trace-format=binary].

    A binary trace is a 5-byte header ({!magic} + a version byte) followed
    by one length-prefixed record per event.  Integers are LEB128
    varints (zigzag-mapped where signed), floats the 8 little-endian
    bytes of [Int64.bits_of_float], and structured JSON payload fields
    are embedded as compact JSON strings — reusing the JSONL codec's
    exact round-trip contract.  Full record layout:
    doc/observability.md.

    {!Trace_reader} auto-detects the format by the magic, so every
    reading tool accepts both; [rota trace convert] rewrites a binary
    trace as JSONL. *)

val magic : string
(** ["ROTB"] — the first four bytes of every binary trace. *)

val version : int
(** The format version this build writes and reads. *)

val header : string
(** {!magic} followed by the {!version} byte; what {!read_header}
    expects and the binary sink writes first. *)

(** {1 Encoding} *)

val encode : Buffer.t -> Events.t -> unit
(** Append one length-prefixed record to the buffer. *)

(** {1 Decoding} *)

val decode_string : string -> pos:int -> (Events.t * int, string) result
(** Decode the length-prefixed record starting at [pos]; on success also
    returns the offset just past it, so records can be walked in
    sequence.  Never raises: corruption (overrunning lengths, bad tag
    bytes, trailing garbage inside a record) comes back as [Error]. *)

val roundtrip : Events.t -> (Events.t, string) result
(** Encode then decode one event — the codec contract checked by
    [rota trace validate] on binary traces. *)

(** One step of a record-at-a-time reader, distinguishing a clean end
    from a crash-cut final record and from corruption. *)
type item =
  | Event of Events.t  (** A complete, well-formed record. *)
  | Eof  (** The stream ended exactly on a record boundary. *)
  | Cut of int
      (** The stream ended mid-record; the payload is the number of
          dangling bytes (length prefix included) — the binary analogue
          of a JSONL line missing its newline. *)
  | Malformed of string
      (** A complete record that does not decode. *)

val read_header : in_channel -> (unit, string) result
(** Consume and check the 5-byte file header. *)

val read_item : in_channel -> item
(** Read the next record.  After anything but [Event] the channel
    position is unspecified and reading should stop. *)

(** {1 Detection} *)

val file_is_binary : string -> bool
(** Whether the file starts with {!magic}.  Unreadable and too-short
    files are [false] (they are handled by the JSONL path's error
    reporting). *)
