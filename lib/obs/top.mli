(** Dashboard state behind [rota top]: an incremental fold over the
    event stream plus a frame renderer.

    The CLI owns the terminal loop (tail the trace through
    {!Trace_reader.Follow}, redraw, handle keys); this module only
    accumulates and renders, so one [--once] pass and a live tail
    produce identical frames from identical events. *)

type t

val create : source:string -> unit -> t
(** Fresh state; [source] is the trace path shown in the header. *)

val step : t -> Events.t -> unit
(** Fold one event: lifecycle tallies (admitted / rejected / completed /
    killed / preempted, faults, repairs, audit divergences), last value
    per sampled counter and gauge, last snapshot per sampled histogram,
    and completions-per-tick for the throughput sparkline. *)

val render : ?width:int -> ?following:bool -> t -> string
(** One frame: header (source, mode, event/run/sim/wall progress),
    lifecycle counts, audit verified/skipped/divergent/lag, a
    completions-per-tick sparkline over the whole run so far, latency
    quantiles (p50/p95/p99/max per sampled histogram), and the sampled
    counter/gauge values.  [width] (default 80) bounds the sparkline;
    [following] only changes the mode tag in the header.  Plain text —
    no ANSI escapes — so frames are scrollback- and file-friendly. *)
