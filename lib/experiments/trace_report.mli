(** Table rendering for trace summaries and trace-vs-trace diffs — the
    output side of [rota trace summarize] and [rota trace diff],
    sharing {!Table} with the experiment reports. *)

val print_summary : ?top:int -> Rota_obs.Summary.t -> unit
(** Event/run counts, the per-run admission table, certificate coverage
    (decisions / with-certificate / skipped / watchdog divergences),
    span self/total rollups, the top-N slowest spans, metric
    time-series extents, and sampled latency series (last quantile
    snapshot per histogram).  [top] bounds the latency-series rows
    (busiest histograms first); the slowest-spans list is bounded by
    the [top] passed to {!Rota_obs.Summary.of_events}.  Sections with
    no data are omitted. *)

val print_diff :
  label_a:string -> label_b:string -> Rota_obs.Summary.t -> Rota_obs.Summary.t -> unit
(** Policy-by-policy comparison of two traces (admit rate, deadline
    misses, latency quantiles), ending with the total deadline-miss
    delta — the paper's E6 headline number. *)
