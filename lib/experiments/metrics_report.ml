module Metrics = Rota_obs.Metrics

(* Latency series are named "<path>_s" (seconds), possibly with a label
   suffix, e.g. "admission/decision_s.rota". *)
let is_latency name =
  let name =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  String.length name > 2 && String.sub name (String.length name - 2) 2 = "_s"

let us v = Table.cell_float ~decimals:2 (v *. 1e6)

let tables (v : Metrics.view) =
  let counters = List.filter (fun (_, n) -> n > 0) v.Metrics.counters in
  let gauges = v.Metrics.gauges in
  let latency, value_hists =
    List.partition
      (fun (h : Metrics.histogram_view) -> is_latency h.Metrics.hname)
      (List.filter (fun (h : Metrics.histogram_view) -> h.Metrics.count > 0)
         v.Metrics.histograms)
  in
  let sections = ref [] in
  let section title table = sections := (title, table) :: !sections in
  if counters <> [] then
    section "counters"
      (Table.make ~header:[ "counter"; "value" ]
         (List.map (fun (n, c) -> [ n; Table.cell_int c ]) counters));
  if gauges <> [] then
    section "gauges (last value)"
      (Table.make ~header:[ "gauge"; "value" ]
         (List.map (fun (n, g) -> [ n; Table.cell_int g ]) gauges));
  let hist_rows to_cell hs =
    List.map
      (fun (h : Metrics.histogram_view) ->
        [
          h.Metrics.hname;
          Table.cell_int h.Metrics.count;
          to_cell h.Metrics.mean;
          to_cell h.Metrics.p50;
          to_cell h.Metrics.p90;
          to_cell h.Metrics.p95;
          to_cell h.Metrics.p99;
          to_cell h.Metrics.max_v;
        ])
      hs
  in
  let hist_header =
    [ "histogram"; "count"; "mean"; "p50"; "p90"; "p95"; "p99"; "max" ]
  in
  if latency <> [] then
    section "latency histograms (us)"
      (Table.make ~header:hist_header (hist_rows us latency));
  if value_hists <> [] then
    section "value histograms"
      (Table.make ~header:hist_header
         (hist_rows (Table.cell_float ~decimals:1) value_hists));
  List.rev !sections

let print () =
  let sections = tables (Metrics.snapshot ()) in
  if sections = [] then print_endline "(no metrics recorded)"
  else
    List.iter
      (fun (title, table) ->
        Printf.printf "-- %s --\n" title;
        Table.print table)
      sections
