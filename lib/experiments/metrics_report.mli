(** Human-readable rendering of the {!Rota_obs.Metrics} registry.

    Used by [rota --metrics]: after a run, the recorded counters,
    gauges, and latency histograms are printed as {!Table}s — per-policy
    admission counters, engine tallies, and solver hot-path latency
    quantiles. *)

val is_latency : string -> bool
(** Whether a series name denotes seconds: the name before any [.label]
    suffix ends in [_s] (e.g. ["admission/decision_s.rota"]). *)

val tables : Rota_obs.Metrics.view -> (string * Table.t) list
(** [(section title, table)] pairs; sections with nothing recorded are
    omitted.  Latency histograms (series named [*_s], recorded in
    seconds) render in microseconds. *)

val print : unit -> unit
(** Render {!Rota_obs.Metrics.snapshot} to stdout. *)
