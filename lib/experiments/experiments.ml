open Import

let section title =
  Printf.printf "== %s ==\n\n" title

(* Wall-clock of a thunk, in milliseconds, with the result. *)
let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, 1000. *. (t1 -. t0))

let mean_ms f ~repeat =
  (* One clock window around all repetitions, so micro-operations are
     timed above the clock's resolution. *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeat do
    ignore (f ())
  done;
  let t1 = Unix.gettimeofday () in
  1000. *. (t1 -. t0) /. float_of_int repeat

let mean_us f ~repeat = 1000. *. mean_ms f ~repeat

(* ------------------------------------------------------------------ E1 *)

let universe hi =
  let is = ref [] in
  for a = 0 to hi do
    for b = a + 1 to hi do
      is := Interval.of_pair a b :: !is
    done
  done;
  !is

let e1 ~seed:_ () =
  section "E1: Interval Algebra (paper Table I)";
  (* Regenerate Table I: for each relation, its symbol, interpretation and
     a concrete witnessing pair found by the realizer. *)
  let witness r =
    let net = Ia_network.create 2 in
    Ia_network.constrain_relation net 0 1 r;
    match Ia_network.consistent_scenario net with
    | None -> "-"
    | Some scenario -> (
        match Ia_network.realize scenario with
        | Some ivs ->
            Format.asprintf "tau1=%a tau2=%a" Interval.pp ivs.(0) Interval.pp
              ivs.(1)
        | None -> "-")
  in
  let rows =
    List.map
      (fun r ->
        [ Allen.to_symbol r; Allen.interpretation r; witness r ])
      Allen.all
  in
  Table.print (Table.make ~header:[ "relation"; "interpretation"; "witness" ] rows);
  (* Exhaustive validation of the algebra over a concrete universe. *)
  let is = universe 6 in
  let pairs = ref 0 and unique = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          incr pairs;
          let holding = List.filter (fun r -> Allen.holds r i j) Allen.all in
          if List.length holding = 1 then incr unique)
        is)
    is;
  let comp_checked = ref 0 and comp_ok = ref 0 in
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          incr comp_checked;
          (* Soundness: every observed composition is in the table. *)
          let table = Allen.Set.of_list (Allen.compose r1 r2) in
          let sound = ref true in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  List.iter
                    (fun c ->
                      if Allen.relate a b = r1 && Allen.relate b c = r2 then
                        if not (Allen.Set.mem (Allen.relate a c) table) then
                          sound := false)
                    is)
                is)
            (universe 4)
          |> ignore;
          if !sound then incr comp_ok)
        Allen.all)
    Allen.all;
  Table.print
    (Table.make
       ~header:[ "check"; "instances"; "passed" ]
       [
         [ "exactly one base relation per pair"; Table.cell_int !pairs;
           Table.cell_int !unique ];
         [ "composition table sound (13x13)"; Table.cell_int !comp_checked;
           Table.cell_int !comp_ok ];
       ])

(* ------------------------------------------------------------------ E2 *)

let e2 ~seed () =
  section "E2: Resource algebra (paper Section III worked examples)";
  let l1 = Location.make "l1" and l2 = Location.make "l2" in
  let cpu1 = Located_type.cpu l1 in
  let net12 = Located_type.network ~src:l1 ~dst:l2 in
  let iv = Interval.of_pair in
  let show theta = Format.asprintf "%a" Resource_set.pp theta in
  let ex1 =
    Resource_set.union
      (Resource_set.singleton (Term.v 5 (iv 0 3) cpu1))
      (Resource_set.singleton (Term.v 5 (iv 0 5) net12))
  in
  let ex2 =
    Resource_set.union
      (Resource_set.singleton (Term.v 5 (iv 0 3) cpu1))
      (Resource_set.singleton (Term.v 5 (iv 0 5) cpu1))
  in
  let ex3 =
    match
      Resource_set.diff
        (Resource_set.singleton (Term.v 5 (iv 0 3) cpu1))
        (Resource_set.singleton (Term.v 3 (iv 1 2) cpu1))
    with
    | Ok r -> show r
    | Error _ -> "(undefined)"
  in
  Table.print
    (Table.make
       ~header:[ "paper example"; "library result" ]
       [
         [ "{5}^(0,3)_cpu u {5}^(0,5)_net"; show ex1 ];
         [ "{5}^(0,3)_cpu u {5}^(0,5)_cpu"; show ex2 ];
         [ "{5}^(0,3)_cpu \\ {3}^(1,2)_cpu"; ex3 ];
       ]);
  (* Random law checks. *)
  let prng = Prng.create seed in
  let random_profile () =
    let n = Prng.int_range prng 0 5 in
    Profile.of_segments
      (List.init n (fun _ ->
           let a = Prng.int prng 20 in
           let d = Prng.int_range prng 1 6 in
           (iv a (a + d), Prng.int_range prng 1 9)))
  in
  let trials = 2000 in
  let count law =
    let ok = ref 0 in
    for _ = 1 to trials do
      if law () then incr ok
    done;
    !ok
  in
  let commutative () =
    let p = random_profile () and q = random_profile () in
    Profile.equal (Profile.add p q) (Profile.add q p)
  in
  let inverse () =
    let p = random_profile () and q = random_profile () in
    match Profile.sub (Profile.add p q) q with
    | Ok r -> Profile.equal r p
    | Error _ -> false
  in
  let dominance () =
    let p = random_profile () and q = random_profile () in
    Profile.dominates (Profile.add p q) q
  in
  Table.print
    (Table.make
       ~header:[ "algebra law"; "trials"; "passed" ]
       [
         [ "union commutative"; Table.cell_int trials; Table.cell_int (count commutative) ];
         [ "(p u q) \\ q = p"; Table.cell_int trials; Table.cell_int (count inverse) ];
         [ "p u q dominates q"; Table.cell_int trials; Table.cell_int (count dominance) ];
       ])

(* ------------------------------------------------------------------ E3 *)

let e3 ~seed:_ () =
  section "E3: Figure 1 satisfaction semantics, clause by clause";
  let l1 = Location.make "l1" in
  let cpu1 = Located_type.cpu l1 in
  let iv = Interval.of_pair in
  let a1 = Actor_name.make "a1" in
  let amount = Requirement.amount in
  let theta = Resource_set.singleton (Term.v 2 (iv 0 6) cpu1) in
  let idle = State.make ~available:theta ~now:0 in
  let busy =
    Result.get_ok
      (State.accommodate_parts idle ~id:"busy" ~window:(iv 0 6)
         [ (a1, [ [ amount cpu1 12 ] ]) ])
  in
  let simple q = Formula.satisfy_simple (Requirement.make_simple ~amounts:[ amount cpu1 q ] ~window:(iv 0 6)) in
  let complexf =
    Formula.satisfy_complex
      (Requirement.make_complex
         ~steps:[ [ amount cpu1 4 ]; [ amount cpu1 4 ] ]
         ~window:(iv 0 6))
  in
  let concurrentf =
    Formula.satisfy_concurrent
      (Requirement.make_concurrent
         ~parts:
           [
             Requirement.make_complex ~steps:[ [ amount cpu1 4 ] ] ~window:(iv 0 6);
             Requirement.make_complex ~steps:[ [ amount cpu1 4 ] ] ~window:(iv 0 6);
           ]
         ~window:(iv 0 6))
  in
  let verdict state psi quantifier =
    let v =
      match quantifier with
      | `Exists -> Semantics.exists_path state psi
      | `Forall -> Semantics.forall_paths state psi
    in
    Format.asprintf "%a" Semantics.pp_verdict v
  in
  let rows =
    [
      [ "true"; "true"; verdict idle Formula.tt `Exists; verdict idle Formula.tt `Forall ];
      [ "false"; "false"; verdict idle Formula.ff `Exists; verdict idle Formula.ff `Forall ];
      [
        "satisfy(rho(gamma,s,d)), idle system";
        "satisfy 10 cpu in [0,6)";
        verdict idle (simple 10) `Exists;
        verdict idle (simple 10) `Forall;
      ];
      [
        "satisfy, demand beyond capacity";
        "satisfy 13 cpu in [0,6)";
        verdict idle (simple 13) `Exists;
        verdict idle (simple 13) `Forall;
      ];
      [
        "satisfy under contention";
        "satisfy 12 cpu, busy system";
        verdict busy (simple 12) `Exists;
        verdict busy (simple 12) `Forall;
      ];
      [
        "satisfy(rho(Gamma,s,d))";
        "two 4-cpu steps in order";
        verdict idle complexf `Exists;
        verdict idle complexf `Forall;
      ];
      [
        "satisfy(rho(Lambda,s,d))";
        "two concurrent 4-cpu actors";
        verdict idle concurrentf `Exists;
        verdict idle concurrentf `Forall;
      ];
      [
        "negation";
        "!satisfy 13 cpu";
        verdict idle (Formula.neg (simple 13)) `Exists;
        verdict idle (Formula.neg (simple 13)) `Forall;
      ];
      [
        "eventually";
        "<> satisfy 4 cpu";
        verdict idle (Formula.eventually (simple 4)) `Exists;
        verdict idle (Formula.eventually (simple 4)) `Forall;
      ];
      [
        "always";
        "[] true";
        verdict idle (Formula.always Formula.tt) `Exists;
        verdict idle (Formula.always Formula.tt) `Forall;
      ];
    ]
  in
  Table.print
    (Table.make ~header:[ "clause"; "formula"; "exists path"; "all paths" ] rows)

(* ------------------------------------------------------------------ E4 *)

let e4 ~seed () =
  section "E4: Theorem 2 — sequential accommodation (greedy vs exhaustive)";
  let l1 = Location.make "l1" in
  let cpu1 = Located_type.cpu l1 in
  let net = Located_type.network ~src:l1 ~dst:l1 in
  let iv = Interval.of_pair in
  let prng = Prng.create seed in
  (* Agreement counts on random instances. *)
  let agreement_trials = 1000 in
  let agree = ref 0 and feasible = ref 0 in
  for _ = 1 to agreement_trials do
    let random_rects () =
      List.init (Prng.int_range prng 0 3) (fun _ ->
          let a = Prng.int prng 7 in
          let d = Prng.int_range prng 1 3 in
          (iv a (a + d), Prng.int_range prng 1 3))
    in
    let theta =
      Resource_set.union
        (Resource_set.of_terms
           (Profile.to_terms ~ltype:cpu1 (Profile.of_segments (random_rects ()))))
        (Resource_set.of_terms
           (Profile.to_terms ~ltype:net (Profile.of_segments (random_rects ()))))
    in
    let steps =
      List.init (Prng.int_range prng 1 3) (fun _ ->
          [
            Requirement.amount cpu1 (Prng.int prng 5);
            Requirement.amount net (Prng.int prng 5);
          ])
    in
    let c = Requirement.make_complex ~steps ~window:(iv 0 9) in
    let g = Accommodation.sequential_feasible theta c in
    let x = Accommodation.sequential_feasible_exhaustive theta c in
    if g = x then incr agree;
    if g then incr feasible
  done;
  Table.print
    (Table.make
       ~header:[ "check"; "instances"; "agreements"; "feasible" ]
       [
         [
           "greedy = exhaustive";
           Table.cell_int agreement_trials;
           Table.cell_int !agree;
           Table.cell_int !feasible;
         ];
       ]);
  (* Scaling of the greedy procedure in the number of steps. *)
  let scaling_rows =
    List.map
      (fun steps_n ->
        let window = iv 0 (4 * steps_n) in
        let theta =
          Resource_set.singleton (Term.v 2 window cpu1)
        in
        let steps = List.init steps_n (fun _ -> [ Requirement.amount cpu1 6 ]) in
        let c = Requirement.make_complex ~steps ~window in
        let us =
          mean_us ~repeat:2000 (fun () ->
              ignore (Accommodation.schedule_sequential theta c))
        in
        [ Table.cell_int steps_n; Table.cell_float ~decimals:2 us ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  Table.print (Table.make ~header:[ "steps"; "greedy mean us" ] scaling_rows)

(* ------------------------------------------------------------------ E5 *)

let e5 ~seed () =
  section "E5: Theorem 4 — admission cost vs existing commitments";
  let rows =
    List.map
      (fun n ->
        let params =
          {
            Scenario.default_params with
            seed;
            arrivals = n;
            horizon = 40 * n;
            locations = 2;
            slack = 4.0;
          }
        in
        let computations = Scenario.computations params in
        let capacity = Scenario.capacity_of params in
        let ctrl = ref (Admission.create Admission.Rota capacity) in
        let decisions = ref 0 and admitted = ref 0 in
        let total_ms = ref 0. in
        List.iter
          (fun (c : Computation.t) ->
            let (next, outcome), ms =
              timed (fun () -> Admission.request !ctrl ~now:0 c)
            in
            ctrl := next;
            incr decisions;
            if outcome.Admission.admitted then incr admitted;
            total_ms := !total_ms +. ms)
          computations;
        [
          Table.cell_int n;
          Table.cell_int !admitted;
          Table.cell_float ~decimals:4 (!total_ms /. float_of_int (max 1 !decisions));
        ])
      [ 5; 10; 20; 40; 80 ]
  in
  Table.print
    (Table.make ~header:[ "offered"; "admitted"; "mean decision ms" ] rows)

(* ------------------------------------------------------------------ E6 *)

let e6 ~seed () =
  section "E6: Deadline assurance — ROTA vs baselines across load";
  let loads = [ 0.5; 1.0; 2.0; 4.0 ] in
  let rows =
    List.concat_map
      (fun load ->
        let params =
          Scenario.with_load
            { Scenario.default_params with seed; horizon = 160; arrivals = 16 }
            load
        in
        let trace = Scenario.trace params in
        List.map
          (fun policy ->
            let r = Engine.run ~policy trace in
            [
              Table.cell_float ~decimals:1 load;
              Admission.policy_name policy;
              Table.cell_int r.Engine.offered;
              Table.cell_int r.Engine.admitted;
              Table.cell_int r.Engine.completed_on_time;
              Table.cell_int r.Engine.missed_deadlines;
              Table.cell_float (Engine.utilization r);
              Table.cell_float (Engine.goodput r);
            ])
          [ Admission.Rota; Admission.Aggregate; Admission.Optimistic ])
      loads
  in
  Table.print
    (Table.make
       ~header:
         [ "load"; "policy"; "offered"; "admitted"; "on-time"; "missed";
           "utilization"; "goodput" ]
       rows);
  print_endline
    "Expected shape: rota never misses; aggregate and optimistic admit more\n\
     and start missing as load grows.\n"

(* ------------------------------------------------------------------ E7 *)

let e7 ~seed () =
  section "E7: CyberOrgs scoping — global vs per-pool reasoning cost";
  let rows =
    List.map
      (fun pools ->
        let horizon = 120 in
        let per_pool = 6 in
        let global_capacity, tagged =
          Scenario.pooled ~seed ~pools ~per_pool ~horizon
        in
        let slices =
          Array.init pools (fun i ->
              Scenario.pool_capacity ~seed ~pools ~horizon i)
        in
        (* Global: one controller over the union of all pools. *)
        let global_ms =
          mean_ms ~repeat:3 (fun () ->
              let ctrl = ref (Admission.create Admission.Rota global_capacity) in
              List.iter
                (fun (_, c) ->
                  let next, _ = Admission.request !ctrl ~now:0 c in
                  ctrl := next)
                tagged)
        in
        (* Scoped: one controller per pool, each seeing only its slice. *)
        let scoped_ms =
          mean_ms ~repeat:3 (fun () ->
              let ctrls =
                Array.map (fun slice -> ref (Admission.create Admission.Rota slice)) slices
              in
              List.iter
                (fun (pool, c) ->
                  let ctrl = ctrls.(pool) in
                  let next, _ = Admission.request !ctrl ~now:0 c in
                  ctrl := next)
                tagged)
        in
        [
          Table.cell_int pools;
          Table.cell_int (pools * per_pool);
          Table.cell_float ~decimals:3 global_ms;
          Table.cell_float ~decimals:3 scoped_ms;
          Table.cell_float
            (if scoped_ms > 0. then global_ms /. scoped_ms else 0.);
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.print
    (Table.make
       ~header:[ "pools"; "computations"; "global ms"; "scoped ms"; "speedup" ]
       rows);
  print_endline
    "Expected shape: scoped reasoning cost stays flat per pool while the\n\
     global controller pays for every other pool's resources.\n"

(* ------------------------------------------------------------------ E8 *)

let e8 ~seed:_ () =
  section "E8: Interacting actors — request/response chains (future work 1)";
  let l1 = Location.make "l1" and l2 = Location.make "l2" in
  let window_of deadline = deadline in
  (* A ping-pong chain of depth k: alice and bob alternate, each reply
     gated on the previous message.  Compare the dependency-aware makespan
     with the independent-actors lower bound (which ignores waiting). *)
  let chain depth deadline =
    let alice = Actor_name.make "alice" and bob = Actor_name.make "bob" in
    let rec alice_events k =
      if k = 0 then [ Rota.Session.Act Action.ready ]
      else
        Rota.Session.Act (Action.evaluate 1)
        :: Rota.Session.Act (Action.send ~dest:bob ~size:1)
        :: Rota.Session.Await bob
        :: alice_events (k - 1)
    in
    let rec bob_events k =
      if k = 0 then []
      else
        Rota.Session.Await alice
        :: Rota.Session.Act (Action.evaluate 1)
        :: Rota.Session.Act (Action.send ~dest:alice ~size:1)
        :: bob_events (k - 1)
    in
    Result.get_ok
      (Rota.Session.make ~id:"chain" ~start:0 ~deadline
         [
           Rota.Session.participant ~name:alice ~home:l1 (alice_events depth);
           Rota.Session.participant ~name:bob ~home:l2 (bob_events depth);
         ])
  in
  let capacity deadline =
    Resource_set.of_terms
      [
        Term.v 1 (Interval.of_pair 0 deadline) (Located_type.cpu l1);
        Term.v 1 (Interval.of_pair 0 deadline) (Located_type.cpu l2);
        Term.v 2 (Interval.of_pair 0 deadline)
          (Located_type.network ~src:l1 ~dst:l2);
        Term.v 2 (Interval.of_pair 0 deadline)
          (Located_type.network ~src:l2 ~dst:l1);
      ]
  in
  let rows =
    List.map
      (fun depth ->
        let deadline = 80 * depth in
        let session = chain depth deadline in
        let theta = capacity (window_of deadline) in
        let nodes = Rota.Session.to_nodes Cost_model.default session in
        let makespan, feasible =
          match Rota.Precedence.schedule theta nodes with
          | Ok placements -> (Rota.Precedence.finish_time placements, true)
          | Error _ -> (0, false)
        in
        let us =
          mean_us ~repeat:200 (fun () -> Rota.Precedence.schedule theta nodes)
        in
        [
          Table.cell_int depth;
          Table.cell_int (List.length nodes);
          (if feasible then Table.cell_int makespan else "-");
          Table.cell_float ~decimals:1 us;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print
    (Table.make
       ~header:[ "round trips"; "segments"; "makespan"; "schedule mean us" ]
       rows);
  (* Deadlock detection: both peers await each other first. *)
  let a = Actor_name.make "alice" and b = Actor_name.make "bob" in
  let deadlocked =
    Result.get_ok
      (Rota.Session.make ~id:"dl" ~start:0 ~deadline:50
         [
           Rota.Session.participant ~name:a ~home:l1
             [ Rota.Session.Await b; Rota.Session.Act (Action.send ~dest:b ~size:1) ];
           Rota.Session.participant ~name:b ~home:l2
             [ Rota.Session.Await a; Rota.Session.Act (Action.send ~dest:a ~size:1) ];
         ])
  in
  (match
     Rota.Session.meets_deadline Cost_model.default (capacity 50) deadlocked
   with
  | Error (Rota.Precedence.Cycle ids) ->
      Printf.printf "deadlock detection: cycle among {%s} reported statically\n\n"
        (String.concat ", " ids)
  | _ -> Printf.printf "deadlock detection: UNEXPECTED RESULT\n\n");
  (* End to end: mixed computations + sessions under each policy. *)
  let params =
    { Scenario.default_params with seed = 42; horizon = 160; arrivals = 30;
      locations = 2; slack = 1.6 }
  in
  let trace = Scenario.trace_with_sessions params ~sessions:20 in
  let rows =
    List.map
      (fun policy ->
        let r = Engine.run ~policy trace in
        [
          Admission.policy_name policy;
          Table.cell_int r.Engine.offered;
          Table.cell_int r.Engine.admitted;
          Table.cell_int r.Engine.completed_on_time;
          Table.cell_int r.Engine.missed_deadlines;
          Table.cell_float (Engine.goodput r);
        ])
      [ Admission.Rota; Admission.Aggregate; Admission.Optimistic ]
  in
  Table.print
    (Table.make
       ~header:[ "policy"; "offered"; "admitted"; "on-time"; "missed"; "goodput" ]
       rows)

(* ------------------------------------------------------------------ E9 *)

let e9 ~seed:_ () =
  section "E9: Stay-or-migrate planning (future work 2)";
  let home = Location.make "home" and remote = Location.make "remote" in
  let window = Interval.of_pair 0 60 in
  let work = [ Action.evaluate 2; Action.evaluate 2; Action.ready ] in
  let worker = Actor_name.make "worker" in
  (* Sweep the home node's rate: when home is slow, migrating wins; as it
     speeds up, staying takes over (no migration overhead). *)
  let rows =
    List.map
      (fun home_rate ->
        let theta =
          Resource_set.of_terms
            [
              Term.v home_rate window (Located_type.cpu home);
              Term.v 2 window (Located_type.cpu remote);
              Term.v 3 window (Located_type.network ~src:home ~dst:remote);
              Term.v 3 window (Located_type.network ~src:remote ~dst:home);
            ]
        in
        match
          Rota_scheduler.Planner.best theta ~window ~name:worker ~home
            ~sites:[ remote ] ~work
        with
        | Some v ->
            [
              Table.cell_int home_rate;
              Format.asprintf "%a" Rota_scheduler.Planner.pp_strategy
                v.Rota_scheduler.Planner.strategy;
              Table.cell_int v.Rota_scheduler.Planner.finish;
            ]
        | None -> [ Table.cell_int home_rate; "(none feasible)"; "-" ])
      [ 1; 2; 3; 4; 8 ]
  in
  Table.print (Table.make ~header:[ "home cpu rate"; "best strategy"; "finish" ] rows);
  print_endline
    "Expected shape: migration wins while home is the bottleneck; staying\n\
     takes over once home capacity beats the remote rate plus travel cost.\n"

(* ----------------------------------------------------------------- E10 *)

let e10 ~seed () =
  section "E10: Cost-model calibration (Phi's 'estimates revised as necessary')";
  (* The world secretly costs twice the believed CPU price: reservations
     are half-sized, so even ROTA admissions miss — until the calibration
     loop learns the real prices from consumed + owed work. *)
  let believed = Cost_model.default in
  let true_model =
    {
      believed with
      Cost_model.evaluate_cost = 2 * believed.Cost_model.evaluate_cost;
      create_cost = 2 * believed.Cost_model.create_cost;
      ready_cost = 2 * believed.Cost_model.ready_cost;
      migrate_pack_cost = 2 * believed.Cost_model.migrate_pack_cost;
      migrate_unpack_cost = 2 * believed.Cost_model.migrate_unpack_cost;
    }
  in
  let params =
    { Scenario.default_params with seed; horizon = 200; arrivals = 24;
      locations = 2; slack = 2.5 }
  in
  let trace = Scenario.trace params in
  let iterations =
    Rota_sim.Calibration.calibrate ~iterations:3 ~policy:Admission.Rota
      ~believed ~true_model trace
  in
  let rows =
    List.mapi
      (fun i (model, (r : Engine.report)) ->
        [
          Table.cell_int (i + 1);
          Table.cell_int model.Cost_model.evaluate_cost;
          Table.cell_int r.Engine.admitted;
          Table.cell_int r.Engine.completed_on_time;
          Table.cell_int r.Engine.missed_deadlines;
        ])
      iterations
  in
  Table.print
    (Table.make
       ~header:
         [ "iteration"; "believed evaluate cost"; "admitted"; "on-time"; "missed" ]
       rows);
  print_endline
    "Expected shape: iteration 1 under-prices CPU (true cost is 16) and\n\
     misses deadlines despite ROTA reservations; once the loop learns the\n\
     real price, admissions shrink and misses return to zero.\n"

(* ----------------------------------------------------------------- E11 *)

let e11 ~seed () =
  section "E11: Fault injection — deadline assurance under unannounced failure";
  (* The same workload under growing fault intensity, three arms per
     intensity: ROTA with the repair ladder, ROTA with broken commitments
     left to die, and the optimistic baseline.  Each intensity aggregates
     several fault seeds so one lucky plan cannot flatter an arm. *)
  let params =
    { Scenario.default_params with seed; horizon = 160; arrivals = 16;
      slack = 3.0 }
  in
  let trace = Scenario.trace params in
  let fault_seeds = [ 0; 1; 2; 3; 4 ] in
  let arms =
    [
      ("rota+repair", Admission.Rota, true);
      ("rota-no-repair", Admission.Rota, false);
      ("optimistic", Admission.Optimistic, true);
    ]
  in
  let rows =
    List.concat_map
      (fun intensity ->
        List.map
          (fun (label, policy, repair) ->
            let total = ref Engine.no_faults in
            let admitted = ref 0 and missed = ref 0 in
            List.iter
              (fun fault_seed ->
                let faults = Scenario.fault_plan ~fault_seed ~intensity params in
                let r = Engine.run ~faults ~repair ~policy trace in
                admitted := !admitted + r.Engine.admitted;
                missed := !missed + r.Engine.missed_deadlines;
                let f = r.Engine.faults in
                total :=
                  {
                    Engine.injected = !total.Engine.injected + f.Engine.injected;
                    revoked_quantity =
                      !total.Engine.revoked_quantity + f.Engine.revoked_quantity;
                    commitments_revoked =
                      !total.Engine.commitments_revoked
                      + f.Engine.commitments_revoked;
                    degraded = !total.Engine.degraded + f.Engine.degraded;
                    reaccommodated =
                      !total.Engine.reaccommodated + f.Engine.reaccommodated;
                    migrated = !total.Engine.migrated + f.Engine.migrated;
                    retries = !total.Engine.retries + f.Engine.retries;
                    retry_successes =
                      !total.Engine.retry_successes + f.Engine.retry_successes;
                    preempted = !total.Engine.preempted + f.Engine.preempted;
                    work_saved = !total.Engine.work_saved + f.Engine.work_saved;
                  })
              fault_seeds;
            let miss_rate =
              if !admitted = 0 then 0.
              else float_of_int !missed /. float_of_int !admitted
            in
            [
              Table.cell_float ~decimals:2 intensity;
              label;
              Table.cell_int !admitted;
              Table.cell_int
                (!total.Engine.commitments_revoked + !total.Engine.degraded);
              Table.cell_int
                (!total.Engine.reaccommodated + !total.Engine.migrated);
              Table.cell_int !total.Engine.preempted;
              Table.cell_int !missed;
              Table.cell_float miss_rate;
              Table.cell_int !total.Engine.work_saved;
            ])
          arms)
      [ 0.0; 0.25; 0.5; 1.0; 1.5 ]
  in
  Table.print
    (Table.make
       ~header:
         [ "intensity"; "policy"; "admitted"; "broken"; "repaired";
           "preempted"; "missed"; "miss rate"; "work saved" ]
       rows);
  print_endline
    "Expected shape: at intensity 0 the arms agree with E6.  As faults\n\
     grow, rota-no-repair's broken commitments all become deadline misses;\n\
     the repair ladder re-accommodates or migrates most victims (strictly\n\
     lower miss rate at every non-zero intensity) and its work-saved\n\
     column prices the partial executions rescued from the kill pass.\n"

(* ---------------------------------------------------------------- glue *)

let experiments =
  [
    ("e1", ("Table I: interval algebra relations and composition", e1));
    ("e2", ("Section III resource-algebra worked examples and laws", e2));
    ("e3", ("Figure 1 semantics, clause by clause", e3));
    ("e4", ("Theorem 2: greedy vs exhaustive sequential accommodation", e4));
    ("e5", ("Theorem 4: admission cost vs commitments", e5));
    ("e6", ("Deadline assurance: ROTA vs baselines across load", e6));
    ("e7", ("CyberOrgs scoping: global vs per-pool reasoning", e7));
    ("e8", ("Interacting actors: chains, makespans, deadlock detection", e8));
    ("e9", ("Stay-or-migrate planning crossover", e9));
    ("e10", ("Cost-model calibration loop", e10));
    ("e11", ("Fault injection: repair vs no-repair vs optimistic", e11));
  ]

let all_ids = List.map fst experiments

let description id =
  Option.map fst (List.assoc_opt id experiments)

let run ?(seed = 42) id =
  match id with
  | "all" ->
      List.iter (fun (_, (_, f)) -> f ~seed ()) experiments;
      Ok ()
  | id -> (
      match List.assoc_opt id experiments with
      | Some (_, f) ->
          f ~seed ();
          Ok ()
      | None ->
          Error
            (Printf.sprintf "unknown experiment %S (expected %s or all)" id
               (String.concat ", " all_ids)))
