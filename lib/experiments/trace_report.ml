module Summary = Rota_obs.Summary

let ms v = Table.cell_float ~decimals:3 (v *. 1e3)

let runs_table (s : Summary.t) =
  Table.make
    ~header:
      [
        "run"; "policy"; "offered"; "admitted"; "rejected"; "completed";
        "missed"; "owed"; "admit-rate"; "lat p50"; "lat p90"; "lat p99";
      ]
    (List.map
       (fun (r : Summary.run) ->
         [
           Table.cell_int r.Summary.run_id;
           (if r.Summary.policy = "" then "?" else r.Summary.policy);
           Table.cell_int (Summary.offered r);
           Table.cell_int r.Summary.admitted;
           Table.cell_int r.Summary.rejected;
           Table.cell_int r.Summary.completed;
           Table.cell_int r.Summary.killed;
           Table.cell_int r.Summary.owed;
           Table.cell_float (Summary.admit_rate r);
           Table.cell_int (Summary.latency_quantile r 0.5);
           Table.cell_int (Summary.latency_quantile r 0.9);
           Table.cell_int (Summary.latency_quantile r 0.99);
         ])
       s.Summary.runs)

let spans_table (s : Summary.t) =
  Table.make
    ~header:[ "span"; "count"; "total ms"; "self ms"; "max ms" ]
    (List.map
       (fun (st : Summary.span_stat) ->
         [
           st.Summary.span_name;
           Table.cell_int st.Summary.count;
           ms st.Summary.total_s;
           ms st.Summary.self_s;
           ms st.Summary.max_s;
         ])
       s.Summary.span_stats)

let slowest_table (s : Summary.t) =
  Table.make
    ~header:[ "slowest spans"; "run"; "ms" ]
    (List.map
       (fun (sl : Summary.slow_span) ->
         [
           sl.Summary.slow_name;
           Table.cell_int sl.Summary.slow_run;
           ms sl.Summary.slow_s;
         ])
       s.Summary.slowest)

(* One row per run that recorded decision provenance: how many decisions
   carry a re-verifiable certificate, and how many audit-divergence
   events a live watchdog left in the trace. *)
let coverage_table (s : Summary.t) =
  Table.make
    ~header:
      [
        "run"; "policy"; "decisions"; "with-certificate"; "skipped";
        "divergences";
      ]
    (List.filter_map
       (fun (r : Summary.run) ->
         if r.Summary.decisions = 0 && r.Summary.divergences = 0 then None
         else
           Some
             [
               Table.cell_int r.Summary.run_id;
               (if r.Summary.policy = "" then "?" else r.Summary.policy);
               Table.cell_int r.Summary.decisions;
               Table.cell_int r.Summary.certified;
               Table.cell_int (r.Summary.decisions - r.Summary.certified);
               Table.cell_int r.Summary.divergences;
             ])
       s.Summary.runs)

let reject_reasons_table (s : Summary.t) =
  let rows =
    List.concat_map
      (fun (r : Summary.run) ->
        List.map
          (fun (slug, n) ->
            [
              Table.cell_int r.Summary.run_id;
              (if r.Summary.policy = "" then "?" else r.Summary.policy);
              slug;
              Table.cell_int n;
            ])
          r.Summary.reject_reasons)
      s.Summary.runs
  in
  Table.make ~header:[ "run"; "policy"; "reject reason"; "count" ] rows

let series_table (s : Summary.t) =
  Table.make
    ~header:[ "metric series"; "samples"; "first"; "last"; "min"; "max" ]
    (List.map
       (fun (se : Summary.series) ->
         let values = List.map snd se.Summary.samples in
         let fold f init = List.fold_left f init values in
         let cell v = Table.cell_float ~decimals:1 v in
         [
           se.Summary.series_name;
           Table.cell_int (List.length values);
           cell (match values with v :: _ -> v | [] -> 0.);
           cell (match List.rev values with v :: _ -> v | [] -> 0.);
           cell (fold Float.min infinity);
           cell (fold Float.max neg_infinity);
         ])
       s.Summary.series)

(* Sampled histogram snapshots: latency over time.  One row per
   histogram, showing the sampling extent and the final quantiles —
   [_s]-named series render in microseconds, like the metrics report. *)
let latency_series_table ?top (s : Summary.t) =
  let rows =
    List.filter_map
      (fun (h : Summary.hist_series) ->
        match List.rev h.Summary.points with
        | [] -> None
        | last :: _ ->
            let q v =
              if Metrics_report.is_latency h.Summary.hist_name then
                Table.cell_float ~decimals:2 (v *. 1e6)
              else Table.cell_float ~decimals:2 v
            in
            Some
              ( last.Summary.hp_count,
                [
                  h.Summary.hist_name;
                  Table.cell_int (List.length h.Summary.points);
                  Table.cell_int last.Summary.hp_count;
                  q last.Summary.hp_p50;
                  q last.Summary.hp_p95;
                  q last.Summary.hp_p99;
                  q last.Summary.hp_max;
                ] ))
      s.Summary.hist_series
    (* Busiest histograms first, so --top keeps the hot paths. *)
    |> List.sort (fun (c1, _) (c2, _) -> compare c2 c1)
    |> List.map snd
  in
  let rows =
    match top with
    | Some n -> List.filteri (fun i _ -> i < n) rows
    | None -> rows
  in
  Table.make
    ~header:
      [
        "latency series (us)"; "samples"; "count"; "p50"; "p95"; "p99"; "max";
      ]
    rows

let print_summary ?top (s : Summary.t) =
  Printf.printf "%d events, %d runs\n\n" s.Summary.total_events
    (List.length s.Summary.runs);
  if s.Summary.runs <> [] then begin
    print_endline "-- runs --";
    Table.print (runs_table s)
  end;
  if List.exists
       (fun (r : Summary.run) ->
         r.Summary.decisions > 0 || r.Summary.divergences > 0)
       s.Summary.runs
  then begin
    print_endline "-- certificate coverage --";
    Table.print (coverage_table s)
  end;
  if List.exists (fun (r : Summary.run) -> r.Summary.reject_reasons <> [])
       s.Summary.runs
  then begin
    print_endline "-- reject reasons --";
    Table.print (reject_reasons_table s)
  end;
  if s.Summary.span_stats <> [] then begin
    print_endline "-- spans (self vs total) --";
    Table.print (spans_table s)
  end;
  if s.Summary.slowest <> [] then begin
    print_endline "-- slowest spans --";
    Table.print (slowest_table s)
  end;
  if s.Summary.series <> [] then begin
    print_endline "-- metric time series --";
    Table.print (series_table s)
  end;
  if s.Summary.hist_series <> [] then begin
    print_endline "-- latency series (last sample) --";
    Table.print (latency_series_table ?top s)
  end

(* --- diff ---------------------------------------------------------------- *)

let delta_int a b = Printf.sprintf "%+d" (b - a)
let delta_rate a b = Printf.sprintf "%+.2f" (b -. a)

let print_diff ~label_a ~label_b (a : Summary.t) (b : Summary.t) =
  let aggs_a = Summary.by_policy a and aggs_b = Summary.by_policy b in
  let policies =
    List.sort_uniq String.compare
      (List.map (fun (g : Summary.agg) -> g.Summary.agg_policy) aggs_a
      @ List.map (fun (g : Summary.agg) -> g.Summary.agg_policy) aggs_b)
  in
  let find aggs p =
    List.find_opt (fun (g : Summary.agg) -> g.Summary.agg_policy = p) aggs
  in
  let zero p =
    {
      Summary.agg_policy = p;
      agg_runs = 0;
      agg_offered = 0;
      agg_admitted = 0;
      agg_completed = 0;
      agg_killed = 0;
      agg_owed = 0;
      agg_latencies = [||];
      agg_reject_reasons = [];
    }
  in
  Printf.printf "A = %s\nB = %s\n\n" label_a label_b;
  let rows =
    List.map
      (fun p ->
        let ga = Option.value (find aggs_a p) ~default:(zero p) in
        let gb = Option.value (find aggs_b p) ~default:(zero p) in
        [
          p;
          Table.cell_float (Summary.agg_admit_rate ga);
          Table.cell_float (Summary.agg_admit_rate gb);
          delta_rate (Summary.agg_admit_rate ga) (Summary.agg_admit_rate gb);
          Table.cell_int ga.Summary.agg_killed;
          Table.cell_int gb.Summary.agg_killed;
          delta_int ga.Summary.agg_killed gb.Summary.agg_killed;
          Table.cell_int (Summary.agg_quantile ga 0.5);
          Table.cell_int (Summary.agg_quantile gb 0.5);
          Table.cell_int (Summary.agg_quantile ga 0.9);
          Table.cell_int (Summary.agg_quantile gb 0.9);
        ])
      policies
  in
  Table.print
    (Table.make
       ~header:
         [
           "policy"; "admit A"; "admit B"; "d-admit"; "missed A"; "missed B";
           "d-missed"; "p50 A"; "p50 B"; "p90 A"; "p90 B";
         ]
       rows);
  (* The E6 headline: total deadline misses, side by side. *)
  let total aggs =
    List.fold_left (fun acc (g : Summary.agg) -> acc + g.Summary.agg_killed) 0 aggs
  in
  let ma = total aggs_a and mb = total aggs_b in
  Printf.printf "deadline misses: A=%d B=%d (delta %+d)\n" ma mb (mb - ma)
