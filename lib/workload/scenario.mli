open Import

(** Named experiment scenarios.

    Bundles the generators of {!Gen} into the parameterized environments
    the experiment suite (EXPERIMENTS.md) and the benchmarks run on. *)

type params = {
  seed : int;
  locations : int;
  horizon : Time.t;
  arrivals : int;  (** Number of computations offered. *)
  actors : int * int;  (** Actors per computation (range). *)
  actions : int * int;  (** Actions per actor (range). *)
  slack : float;  (** Deadline looseness; 1.0 = just feasible alone. *)
  cpu_rate : int;  (** Steady CPU rate per node. *)
  net_rate : int;  (** Steady rate per directed link. *)
  churn_joins : int;  (** Number of transient resource joins. *)
  churn_rate : int * int;
  churn_duration : int * int;
}

val default_params : params
(** A moderate open system: 3 nodes, horizon 200, 30 arrivals, slack 2.0,
    steady rates 4/4, 10 churn joins.  Override fields as needed. *)

val with_load : params -> float -> params
(** Scales the number of arrivals by a load factor (at least one arrival). *)

val world_of : params -> Gen.world

val capacity_of : params -> Resource_set.t
(** The steady capacity of the scenario (excluding churn). *)

val trace : params -> Trace.t
(** The full open-system trace: steady capacity joining at time 0, churn
    joins, and computations arriving at uniform-random instants, each with
    a deadline derived from its size and the scenario's slack. *)

val computations : params -> Computation.t list
(** Just the computations of {!trace}, in arrival order. *)

val trace_with_sessions : params -> sessions:int -> Trace.t
(** {!trace} plus [sessions] random interacting-actor sessions arriving at
    random instants (see [Gen.random_session]). *)

val pooled :
  seed:int ->
  pools:int ->
  per_pool:int ->
  horizon:Time.t ->
  Resource_set.t * (int * Computation.t) list
(** The CyberOrgs-style scoping scenario (experiment E7): [pools]
    disjoint single-node resource encapsulations and, for each, [per_pool]
    computations confined to that pool's node.  Returns the global
    capacity (union of all pools) and the computations tagged with their
    pool index.  Reasoning about a computation only needs its own pool's
    slice; E7 measures how much that scoping saves. *)

val pool_capacity :
  seed:int -> pools:int -> horizon:Time.t -> int -> Resource_set.t
(** The capacity slice of one pool of the {!pooled} scenario. *)

val fault_plan : ?fault_seed:int -> ?intensity:float -> params -> Fault.plan
(** A deterministic fault plan for the scenario [trace p] generates:
    {!Gen.random_faults} seeded from [p.seed + 1009 + fault_seed] (so the
    plan varies under [fault_seed] without disturbing the workload),
    targeting the scenario's computation ids with slowdowns.  [intensity]
    (default [0.5]) scales the number of fault events; [<= 0.] is the
    empty plan. *)
