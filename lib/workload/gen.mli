open Import

(** Synthetic workload generators.

    The paper has no evaluation workload; these generators produce the
    synthetic open-system environments the experiment suite runs on —
    random actor programs (with sends and migrations among the
    computation's actors), deadline-constrained computations, steady
    capacity, and churning resource joins — all deterministically from a
    {!Prng} seed. *)

type world = private {
  locations : Location.t list;
  cost_model : Cost_model.t;
}

val world : ?cost_model:Cost_model.t -> locations:int -> unit -> world
(** [locations] nodes named [l1 .. ln]; cost model defaults to the paper's
    constants. *)

val random_program :
  Prng.t ->
  world ->
  name:Actor_name.t ->
  peers:Actor_name.t list ->
  actions:int ->
  Program.t
(** A random behaviour of the given length: evaluations (complexity 1–3),
    sends to random [peers] (size 1–2), occasional creates, readies, and
    migrations to random locations.  The home location is random. *)

val random_computation :
  Prng.t ->
  world ->
  id:string ->
  start:Time.t ->
  actors:int * int ->
  actions:int * int ->
  slack:float ->
  rate_hint:int ->
  Computation.t
(** A computation of a random number of actors (within [actors]), each with
    a random number of actions (within [actions]).  The deadline is set
    from a work estimate: the computation's largest per-actor demand
    divided by [rate_hint] (the capacity rate the workload expects per
    resource), stretched by [slack] ([1.0] = just feasible in isolation;
    bigger is looser). *)

val steady_capacity :
  world -> horizon:Time.t -> cpu_rate:int -> net_rate:int -> Resource_set.t
(** Permanent capacity over [\[0, horizon)]: [cpu_rate] CPU at every node
    and [net_rate] on every ordered pair of nodes, loopback included (local
    sends consume loopback bandwidth).  Zero rates contribute nothing. *)

val random_session :
  Prng.t ->
  world ->
  id:string ->
  start:Time.t ->
  participants:int * int ->
  exchanges:int * int ->
  slack:float ->
  rate_hint:int ->
  Session.t
(** A random interacting-actor session: a conversation of random message
    exchanges among the participants, each send matched by an await on the
    receiving side (so the session always validates), with evaluations
    sprinkled between.  The deadline is set from the total priced work
    divided by [rate_hint], stretched by [slack] plus headroom for the
    dependency chain. *)

val churn_joins :
  Prng.t ->
  world ->
  horizon:Time.t ->
  joins:int ->
  rate:int * int ->
  duration:int * int ->
  (Time.t * Resource_set.t) list
(** [joins] resource-join events at random times: each brings CPU at one
    random node (rate and lifetime uniform in the given ranges, clipped to
    the horizon).  The join instant is the interval start, honouring the
    rule that departure time is declared on joining. *)

val random_faults :
  Prng.t ->
  world ->
  horizon:Time.t ->
  intensity:float ->
  cpu_rate:int ->
  targets:string list ->
  Fault.plan
(** A deterministic fault plan: roughly [8 * intensity] fault events
    landing in the middle of the horizon — unannounced cpu revocations
    (sometimes delivered twice, sometimes followed by a {!Fault.Rejoin}
    of the same slice a few ticks later), node blackout windows,
    transient slowdowns on random [targets] (admitted computation ids),
    and unpaired rejoins.  [intensity <= 0.] is the empty plan. *)
