open Import

type world = { locations : Location.t list; cost_model : Cost_model.t }

let world ?(cost_model = Cost_model.default) ~locations () =
  if locations < 1 then invalid_arg "Gen.world: need at least one location";
  {
    locations =
      List.init locations (fun i -> Location.make (Printf.sprintf "l%d" (i + 1)));
    cost_model;
  }

let random_action prng world ~peers ~here =
  (* Weighted action mix: mostly evaluations and sends, with the odd
     create, ready or migrate.  Migrations never target the current
     location. *)
  let elsewhere =
    List.filter (fun l -> not (Location.equal l here)) world.locations
  in
  let die = Prng.int prng 10 in
  if die < 4 then Action.evaluate (Prng.int_range prng 1 3)
  else if die < 7 && peers <> [] then
    Action.send ~dest:(Prng.choose prng peers) ~size:(Prng.int_range prng 1 2)
  else if die < 8 then Action.ready
  else if die < 9 || elsewhere = [] then
    Action.create (Actor_name.make (Printf.sprintf "child%d" (Prng.int prng 1000)))
  else Action.migrate (Prng.choose prng elsewhere)

let random_program prng world ~name ~peers ~actions =
  let home = Prng.choose prng world.locations in
  let rec build here n acc =
    if n = 0 then List.rev acc
    else
      let action = random_action prng world ~peers ~here in
      let here =
        match (action : Action.t) with
        | Migrate { dest } -> dest
        | Evaluate _ | Send _ | Create _ | Ready -> here
      in
      build here (n - 1) (action :: acc)
  in
  Program.make ~name ~home (build home actions [])

let random_computation prng world ~id ~start ~actors ~actions ~slack ~rate_hint =
  let actor_count = Prng.int_range prng (fst actors) (snd actors) in
  let names =
    List.init actor_count (fun i -> Actor_name.make (Printf.sprintf "%s.a%d" id i))
  in
  let programs =
    List.map
      (fun name ->
        let peers = List.filter (fun p -> not (Actor_name.equal p name)) names in
        random_program prng world ~name ~peers
          ~actions:(Prng.int_range prng (fst actions) (snd actions)))
      names
  in
  (* Work estimate: a probe computation with a provisional deadline lets us
     compute per-actor demand via the cost model. *)
  let probe =
    Computation.make ~id ~start ~deadline:(start + 1_000_000) programs
  in
  let conc = Computation.to_concurrent world.cost_model probe in
  let per_actor_work =
    List.map Requirement.total_quantity_complex conc.Requirement.parts
  in
  let critical = List.fold_left max 1 per_actor_work in
  let rate_hint = max 1 rate_hint in
  let estimate = (critical + rate_hint - 1) / rate_hint in
  let deadline =
    start + max 2 (int_of_float (ceil (float_of_int estimate *. slack)))
  in
  Computation.make ~id ~start ~deadline programs

let random_session prng world ~id ~start ~participants ~exchanges ~slack
    ~rate_hint =
  let n = Prng.int_range prng (max 2 (fst participants)) (max 2 (snd participants)) in
  let names =
    Array.init n (fun i -> Actor_name.make (Printf.sprintf "%s.p%d" id i))
  in
  let homes = Array.init n (fun _ -> Prng.choose prng world.locations) in
  let events = Array.make n [] in
  let push i e = events.(i) <- e :: events.(i) in
  (* Random evaluations to warm up. *)
  Array.iteri
    (fun i _ ->
      for _ = 1 to Prng.int_range prng 0 2 do
        push i (Session.Act (Action.evaluate (Prng.int_range prng 1 2)))
      done)
    names;
  (* A conversation: each exchange appends a send to the sender's script
     and a matching await (plus some processing) to the receiver's.
     Appending in conversation order keeps the wait graph acyclic. *)
  let exchange_count = Prng.int_range prng (fst exchanges) (snd exchanges) in
  for _ = 1 to exchange_count do
    let sender = Prng.int prng n in
    let receiver = (sender + 1 + Prng.int prng (n - 1)) mod n in
    push sender (Session.Act (Action.send ~dest:names.(receiver) ~size:1));
    push receiver (Session.Await names.(sender));
    if Prng.bool prng then
      push receiver (Session.Act (Action.evaluate (Prng.int_range prng 1 2)))
  done;
  let participants_list =
    List.init n (fun i ->
        Session.participant ~name:names.(i) ~home:homes.(i)
          (List.rev events.(i)))
  in
  (* Estimate the critical work from the priced nodes via a probe. *)
  let probe =
    match
      Session.make ~id ~start ~deadline:(start + 1_000_000) participants_list
    with
    | Ok s -> s
    | Error e -> invalid_arg ("Gen.random_session: " ^ e)
  in
  let nodes = Session.to_nodes world.cost_model probe in
  let total_work =
    List.fold_left
      (fun acc (n : Rota.Precedence.node) ->
        acc + Requirement.total_quantity_complex n.Rota.Precedence.requirement)
      0 nodes
  in
  let rate_hint = max 1 rate_hint in
  let estimate = (total_work + rate_hint - 1) / rate_hint in
  (* The dependency chain serializes in the worst case: budget the whole
     estimate on the critical path, stretched by slack. *)
  let deadline =
    start + max 4 (int_of_float (ceil (float_of_int estimate *. slack)))
  in
  match Session.make ~id ~start ~deadline participants_list with
  | Ok s -> s
  | Error e -> invalid_arg ("Gen.random_session: " ^ e)

let steady_capacity world ~horizon ~cpu_rate ~net_rate =
  match Interval.make ~start:0 ~stop:horizon with
  | None -> Resource_set.empty
  | Some span ->
      let cpus =
        if cpu_rate <= 0 then []
        else
          List.map
            (fun l -> Term.v cpu_rate span (Located_type.cpu l))
            world.locations
      in
      let nets =
        if net_rate <= 0 then []
        else
          (* Every ordered pair, loopback included: local sends consume
             loopback bandwidth rather than being free. *)
          List.concat_map
            (fun src ->
              List.map
                (fun dst -> Term.v net_rate span (Located_type.network ~src ~dst))
                world.locations)
            world.locations
      in
      Resource_set.of_terms (cpus @ nets)

let churn_joins prng world ~horizon ~joins ~rate ~duration =
  List.init joins (fun _ ->
      let at = Prng.int prng (max 1 (horizon - 1)) in
      let lifetime = Prng.int_range prng (fst duration) (snd duration) in
      let stop = min horizon (at + max 1 lifetime) in
      let r = Prng.int_range prng (fst rate) (snd rate) in
      let node = Prng.choose prng world.locations in
      match Interval.make ~start:at ~stop with
      | Some span ->
          (at, Resource_set.singleton (Term.v r span (Located_type.cpu node)))
      | None -> (at, Resource_set.empty))
  |> List.filter (fun (_, r) -> not (Resource_set.is_empty r))

let random_faults prng world ~horizon ~intensity ~cpu_rate ~targets =
  if intensity <= 0. then []
  else begin
    let cpu_slice node ~start ~stop ~rate =
      match Interval.make ~start ~stop with
      | Some span -> Resource_set.singleton (Term.v rate span (Located_type.cpu node))
      | None -> Resource_set.empty
    in
    let count = max 1 (int_of_float (Float.round (intensity *. 8.))) in
    let faults = ref [] in
    let push at kind = faults := { Fault.at; kind } :: !faults in
    for _ = 1 to count do
      (* Faults land in the middle of the run, when commitments exist. *)
      let at = Prng.int_range prng (max 1 (horizon / 8)) (max 2 (3 * horizon / 4)) in
      match Prng.int prng 10 with
      | 0 | 1 | 2 | 3 | 4 ->
          (* Unannounced revocation: part of one node's cpu leaves early. *)
          let node = Prng.choose prng world.locations in
          let rate = Prng.int_range prng 1 (max 1 (cpu_rate / 2)) in
          let stop = min horizon (at + Prng.int_range prng (max 2 (horizon / 8)) (max 3 (horizon / 3))) in
          let slice = cpu_slice node ~start:at ~stop ~rate in
          if not (Resource_set.is_empty slice) then begin
            push at (Fault.Revoke slice);
            (* An unreliable membership layer may deliver the same
               revocation twice; clipping makes the duplicate a no-op. *)
            if Prng.int prng 4 = 0 then push (at + 1) (Fault.Revoke slice);
            (* Capacity often churns back — what backoff-retry waits for. *)
            if Prng.int prng 10 < 6 then begin
              let back = at + Prng.int_range prng 2 8 in
              let rejoin = cpu_slice node ~start:back ~stop ~rate in
              if back < stop && not (Resource_set.is_empty rejoin) then
                push back (Fault.Rejoin rejoin)
            end
          end
      | 5 | 6 ->
          (* Node blackout window. *)
          let node = Prng.choose prng world.locations in
          let until = min horizon (at + Prng.int_range prng 3 (max 4 (horizon / 6))) in
          if until > at then push at (Fault.Blackout { location = node; until })
      | 7 | 8 -> (
          (* Transient cost overrun on one admitted computation. *)
          match targets with
          | [] -> ()
          | _ ->
              push at
                (Fault.Slowdown
                   {
                     computation = Prng.choose prng targets;
                     factor = Prng.int_range prng 2 3;
                   }))
      | _ ->
          (* Unpaired rejoin: fresh capacity from nowhere. *)
          let node = Prng.choose prng world.locations in
          let rate = Prng.int_range prng 1 (max 1 (cpu_rate / 2)) in
          let stop = min horizon (at + Prng.int_range prng (max 2 (horizon / 8)) (max 3 (horizon / 3))) in
          let slice = cpu_slice node ~start:at ~stop ~rate in
          if not (Resource_set.is_empty slice) then push at (Fault.Rejoin slice)
    done;
    Fault.sort (List.rev !faults)
  end
