open Import

type params = {
  seed : int;
  locations : int;
  horizon : Time.t;
  arrivals : int;
  actors : int * int;
  actions : int * int;
  slack : float;
  cpu_rate : int;
  net_rate : int;
  churn_joins : int;
  churn_rate : int * int;
  churn_duration : int * int;
}

let default_params =
  {
    seed = 42;
    locations = 3;
    horizon = 200;
    arrivals = 30;
    actors = (1, 3);
    actions = (2, 5);
    slack = 2.0;
    cpu_rate = 4;
    net_rate = 4;
    churn_joins = 10;
    churn_rate = (1, 3);
    churn_duration = (10, 40);
  }

let with_load p load =
  { p with arrivals = max 1 (int_of_float (float_of_int p.arrivals *. load)) }

let world_of p = Gen.world ~locations:p.locations ()

let capacity_of p =
  Gen.steady_capacity (world_of p) ~horizon:p.horizon ~cpu_rate:p.cpu_rate
    ~net_rate:p.net_rate

let computations_with_times p =
  let prng = Prng.create p.seed in
  let world = world_of p in
  List.init p.arrivals (fun i ->
      (* Arrivals spread over the first two thirds of the horizon, so late
         computations still have room before the world ends. *)
      let start = Prng.int prng (max 1 (2 * p.horizon / 3)) in
      let c =
        Gen.random_computation prng world
          ~id:(Printf.sprintf "c%03d" i)
          ~start ~actors:p.actors ~actions:p.actions ~slack:p.slack
          ~rate_hint:p.cpu_rate
      in
      (* Clamp the deadline into the horizon. *)
      let c =
        if c.Computation.deadline <= p.horizon then c
        else
          Computation.make ~id:c.Computation.id ~start:c.Computation.start
            ~deadline:p.horizon c.Computation.programs
      in
      (start, c))
  |> List.filter (fun ((_, c) : _ * Computation.t) ->
         c.Computation.deadline > c.Computation.start)

let trace p =
  let prng = Prng.create (p.seed + 1) in
  let world = world_of p in
  let joins =
    (0, Trace.Join (capacity_of p))
    :: List.map
         (fun (t, r) -> (t, Trace.Join r))
         (Gen.churn_joins prng world ~horizon:p.horizon ~joins:p.churn_joins
            ~rate:p.churn_rate ~duration:p.churn_duration)
  in
  let arrivals =
    List.map (fun (t, c) -> (t, Trace.Arrive c)) (computations_with_times p)
  in
  Trace.of_events (joins @ arrivals)

let computations p = List.map snd (computations_with_times p)

let trace_with_sessions p ~sessions =
  let prng = Prng.create (p.seed + 2) in
  let world = world_of p in
  let session_events =
    List.init sessions (fun i ->
        let start = Prng.int prng (max 1 (2 * p.horizon / 3)) in
        let s =
          Gen.random_session prng world
            ~id:(Printf.sprintf "s%03d" i)
            ~start ~participants:(2, 3) ~exchanges:(1, 3) ~slack:p.slack
            ~rate_hint:p.cpu_rate
        in
        (* Clamp the deadline into the horizon; drop degenerate ones. *)
        if s.Session.deadline <= p.horizon then Some (start, Trace.Arrive_session s)
        else
          match
            Session.make ~id:s.Session.id ~start:s.Session.start
              ~deadline:p.horizon s.Session.participants
          with
          | Ok s when s.Session.deadline > s.Session.start ->
              Some (start, Trace.Arrive_session s)
          | Ok _ | Error _ -> None)
    |> List.filter_map Fun.id
  in
  Trace.merge (trace p) (Trace.of_events session_events)

let pool_params ~seed ~horizon index =
  {
    default_params with
    seed = seed + (7919 * index);
    locations = 1;
    horizon;
    actors = (1, 2);
    actions = (2, 4);
    slack = 3.0;
    cpu_rate = 4;
    net_rate = 4;
    churn_joins = 0;
  }

(* Rename a single-node world's location so pools get distinct nodes. *)
let relocate_location index l =
  Location.make (Printf.sprintf "p%d_%s" index (Location.name l))

let relocate_type index xi =
  match (xi : Located_type.t) with
  | Located_type.Cpu l -> Located_type.cpu (relocate_location index l)
  | Located_type.Memory l -> Located_type.memory (relocate_location index l)
  | Located_type.Network (src, dst) ->
      Located_type.network
        ~src:(relocate_location index src)
        ~dst:(relocate_location index dst)
  | Located_type.Custom (k, l) ->
      Located_type.custom k (relocate_location index l)

let relocate_resources index theta =
  Resource_set.fold
    (fun xi profile acc ->
      Resource_set.union acc
        (Resource_set.of_terms
           (Profile.to_terms ~ltype:(relocate_type index xi) profile)))
    theta Resource_set.empty

let relocate_program index (p : Program.t) =
  let relocate_action (a : Action.t) =
    match a with
    | Action.Migrate { dest } -> Action.migrate (relocate_location index dest)
    | Action.Evaluate _ | Action.Send _ | Action.Create _ | Action.Ready -> a
  in
  Program.make ~name:p.Program.name
    ~home:(relocate_location index p.Program.home)
    (List.map relocate_action p.Program.actions)

let relocate_computation index (c : Computation.t) =
  Computation.make ~id:(Printf.sprintf "p%d_%s" index c.Computation.id)
    ~start:c.Computation.start ~deadline:c.Computation.deadline
    (List.map (relocate_program index) c.Computation.programs)

let pool_capacity ~seed ~pools:_ ~horizon index =
  relocate_resources index (capacity_of (pool_params ~seed ~horizon index))

let pooled ~seed ~pools ~per_pool ~horizon =
  let capacity = ref Resource_set.empty in
  let tagged = ref [] in
  for index = 0 to pools - 1 do
    let p = { (pool_params ~seed ~horizon index) with arrivals = per_pool } in
    capacity := Resource_set.union !capacity (relocate_resources index (capacity_of p));
    List.iter
      (fun c -> tagged := (index, relocate_computation index c) :: !tagged)
      (computations p)
  done;
  (!capacity, List.rev !tagged)

let fault_plan ?(fault_seed = 0) ?(intensity = 0.5) p =
  if intensity <= 0. then []
  else
    let prng = Prng.create (p.seed + 1009 + fault_seed) in
    let world = world_of p in
    let targets =
      List.map (fun (c : Computation.t) -> c.Computation.id) (computations p)
    in
    Gen.random_faults prng world ~horizon:p.horizon ~intensity
      ~cpu_rate:p.cpu_rate ~targets
