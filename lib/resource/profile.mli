open Import

(** Availability profiles: the simplified form of same-type resource terms.

    The paper's simplification rule aggregates resource terms of identical
    located type over the sub-intervals where they coexist (rates add) and
    keeps the remaining sub-intervals separate.  Iterating that rule over
    any multiset of same-type terms yields a canonical {b step function}
    from time to availability rate, which is what this module represents: a
    sorted sequence of disjoint segments (stored flat, as an int-array
    slab), each an interval with a positive rate, with no two adjacent
    segments of equal rate (those coalesce — the
    paper's "resource terms can reduce in number if two identical located
    type resources with identical rates have time intervals that meet").

    A profile covers a {e single} located type; {!Resource_set} maps located
    types to profiles.  All operations preserve canonical form, so
    structural equality is pointwise equality of the step functions. *)

type t
(** A step function from ticks to non-negative rates, zero outside finitely
    many segments. *)

type segment = { interval : Interval.t; rate : int }
(** One maximal run of constant positive rate. *)

val empty : t
(** The everywhere-zero profile (the null resource). *)

val is_empty : t -> bool

val constant : Interval.t -> int -> t
(** [constant i r] has rate [r] on [i] and [0] elsewhere.  [r = 0] gives
    {!empty}; negative [r] raises [Invalid_argument]. *)

val of_segments : (Interval.t * int) list -> t
(** Builds the pointwise {b sum} of the given rectangles — the paper's
    union-with-simplification of a multiset of same-type terms.  Overlapping
    rectangles add their rates.  Raises [Invalid_argument] on a negative
    rate. *)

val segments : t -> segment list
(** Canonical decomposition, leftmost first. *)

val rate_at : t -> Time.t -> int
(** Availability rate at a tick ([0] where undefined). *)

val add : t -> t -> t
(** Pointwise sum — union of same-type resources. *)

type deficit = { at : Time.t; available : int; required : int }
(** Witness that a subtraction or reservation failed: at tick [at] only
    [available] was present but [required] was needed. *)

val sub : t -> t -> (t, deficit) result
(** [sub p q] is the pointwise difference — the paper's relative complement
    of same-type terms.  Defined only when [p] dominates [q]; otherwise the
    first (earliest) deficit is returned. *)

val dominates : t -> t -> bool
(** [dominates p q] iff [rate_at p t >= rate_at q t] for every tick — i.e.
    a computation that can use [q] can use [p] instead.  The profile-level
    generalization of the paper's term order. *)

val sub_clamped : t -> t -> t
(** [sub_clamped p q] is the pointwise [max (p - q) 0] — what remains of
    [p] after [q] is forcibly taken away.  Unlike {!sub} this is total:
    where [q] exceeds [p] the result is simply zero.  This is the
    availability update for an {e unannounced} revocation, where the
    departing capacity was never promised to stay. *)

val meet : t -> t -> t
(** Pointwise minimum — the part of [p] that [q] also covers.  Used to
    clip a revocation slice to the capacity actually present. *)

val integrate : t -> Interval.t -> int
(** [integrate p w] is the total quantity available within window [w]:
    the sum over ticks of the rate. *)

val total : t -> int
(** Total quantity over the whole profile. *)

val min_rate : t -> Interval.t -> int
(** Minimum rate over the window (0 if the profile has a gap there). *)

val max_rate : t -> int
(** Largest rate anywhere (0 for {!empty}). *)

val support : t -> Interval_set.t
(** Ticks with positive rate. *)

val restrict : t -> Interval.t -> t
(** Zeroes the profile outside the window. *)

val within : t -> Interval.t -> bool
(** [within p w] iff the profile's support lies inside [w] — equivalent
    to [equal (restrict p w) p] without building the restriction. *)

val truncate_before : t -> Time.t -> t
(** [truncate_before p t] zeroes the profile strictly before tick [t] —
    how availability decays as the clock advances (resources in the past
    have expired). *)

val shift : t -> int -> t
(** Translates the profile in time. *)

val first : t -> Time.t option
(** Earliest tick with positive rate. *)

val last : t -> Time.t option
(** Latest tick with positive rate. *)

val horizon : t -> Time.t option
(** One past the latest covered tick ([stop] of the last segment). *)

val completion_time : t -> window:Interval.t -> quantity:int -> Time.t option
(** [completion_time p ~window ~quantity] is the earliest tick [u] such
    that the quantity available in [window ∩ [_, u)] reaches [quantity] —
    i.e. when a computation consuming this profile greedily from
    [start window] would finish.  [None] when even the whole window is not
    enough.  A zero [quantity] completes immediately at [start window]. *)

val consume : t -> window:Interval.t -> quantity:int -> (t * t) option
(** [consume p ~window ~quantity] greedily allocates [quantity] units from
    the earliest availability inside [window].  Returns
    [(remaining, allocation)] with [add remaining allocation = p] and
    [integrate allocation window = quantity], or [None] when the window
    cannot supply the quantity.  The allocation consumes at the full
    available rate tick by tick (the paper's transition rule), except that
    the final tick takes only the remainder. *)

val of_terms : Term.t list -> t
(** Sum of same-type terms, ignoring their located types (the caller —
    {!Resource_set} — groups terms by type first). *)

val to_terms : ltype:Located_type.t -> t -> Term.t list
(** The canonical segments as resource terms of the given type. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [5@[0,3) + 2@[4,6)], or [0] when empty. *)

val pp_deficit : Format.formatter -> deficit -> unit
