open Import

(** Resource sets — the paper's [Theta].

    The resources of a distributed system are "a set of resource terms,
    each with its own located type".  We keep the set in simplified
    (canonical) form at all times: a finite map from located type to the
    {!Profile} aggregating all terms of that type.  Union and relative
    complement are then the pointwise profile operations, matching the
    paper's union-with-simplification and its partial relative
    complement. *)

type t
(** A simplified resource set.  Types mapped to the empty profile are not
    represented, so structural equality is set equality. *)

val empty : t

val is_empty : t -> bool

val of_terms : Term.t list -> t
(** Union of arbitrary terms, simplified. *)

val to_terms : t -> Term.t list
(** The canonical terms, grouped by type in type order, each type's terms
    in time order. *)

val add_term : Term.t -> t -> t

val add_profile : Located_type.t -> Profile.t -> t -> t
(** [add_profile xi p set] adds [p] pointwise to the availability of
    [xi] — the union of a single-type slice without going through an
    intermediate term list. *)

val singleton : Term.t -> t

val union : t -> t -> t
(** The paper's [Theta1 ∪ Theta2]: pointwise sum of availability.  Models
    resources joining the system. *)

type deficit = { ltype : Located_type.t; deficit : Profile.deficit }
(** Witness that a relative complement was undefined: the type and tick at
    which the subtrahend exceeded availability. *)

val diff : t -> t -> (t, deficit) result
(** The paper's relative complement [Theta1 \ Theta2], defined only when
    every term of the subtrahend is dominated by availability in the
    minuend.  Models committing resources (and the impossibility of
    negative resource). *)

val dominates : t -> t -> bool
(** [dominates a b] iff [diff a b] is defined. *)

val diff_clamped : t -> t -> t
(** [diff_clamped a b] is the pointwise [max (a - b) 0] — total, unlike
    {!diff}.  Models an {e unannounced} revocation: the departing slice is
    ripped out of availability whether or not it was all there. *)

val meet : t -> t -> t
(** Pointwise minimum over every type — the part of [a] that [b] also
    covers.  Clips a fault's nominal slice to the capacity actually
    present. *)

val find : Located_type.t -> t -> Profile.t
(** The availability profile of a type ({!Profile.empty} when absent). *)

val mem : Located_type.t -> t -> bool

val domain : t -> Located_type.t list
(** Located types with any availability, in type order. *)

val integrate : t -> Located_type.t -> Interval.t -> int
(** Total quantity of a type available within a window — the paper's
    [U_s^d Theta] aggregation for one type. *)

val restrict : t -> Interval.t -> t
(** Drops availability outside the window. *)

val within : t -> Interval.t -> bool
(** [within set w] iff every profile's support lies inside [w] —
    equivalent to [equal (restrict set w) set] without building the
    restriction. *)

val truncate_before : t -> Time.t -> t
(** Expires all availability strictly before the given tick: how [Theta]
    decays as the system clock advances. *)

val total : t -> int
(** Sum of all quantities over all types (a size measure). *)

val horizon : t -> Time.t option
(** One past the last tick with any availability. *)

val map_profiles : (Located_type.t -> Profile.t -> Profile.t) -> t -> t
(** Rebuilds the set by transforming each type's profile (empty results are
    dropped). *)

val fold : (Located_type.t -> Profile.t -> 'a -> 'a) -> t -> 'a -> 'a

val update : Located_type.t -> (Profile.t -> Profile.t) -> t -> t
(** Replaces one type's profile with a function of its current value. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as a set of terms in the paper's notation. *)

val pp_deficit : Format.formatter -> deficit -> unit
