open Import

type amount = { ltype : Located_type.t; quantity : int }

let amount ltype quantity =
  if quantity < 0 then invalid_arg "Requirement.amount: negative quantity"
  else { ltype; quantity }

type simple = { amounts : amount list; window : Interval.t }
type step = amount list
type complex = { steps : step list; window : Interval.t }
type concurrent = { parts : complex list; window : Interval.t }

(* Sum duplicate types, drop zeros, sort by type. *)
let normalize_amounts_general amounts =
  let module M = Map.Make (Located_type) in
  let totals =
    List.fold_left
      (fun m a ->
        if a.quantity < 0 then
          invalid_arg "Requirement: negative quantity"
        else
          M.update a.ltype
            (fun prev -> Some (Option.value prev ~default:0 + a.quantity))
            m)
      M.empty amounts
  in
  M.fold
    (fun ltype quantity acc ->
      if quantity > 0 then { ltype; quantity } :: acc else acc)
    totals []
  |> List.rev

let normalize_amounts amounts =
  match amounts with
  | [] -> []
  | [ a ] ->
      (* Most steps carry one amount (phi emits singletons for every
         non-migrate action, and merging coalesces runs) — skip the
         aggregation map. *)
      if a.quantity < 0 then invalid_arg "Requirement: negative quantity"
      else if a.quantity = 0 then []
      else amounts
  | _ -> normalize_amounts_general amounts

let make_simple ~amounts ~window = { amounts = normalize_amounts amounts; window }

let make_complex ~steps ~window =
  let steps =
    List.filter_map
      (fun step ->
        match normalize_amounts step with [] -> None | s -> Some s)
      steps
  in
  { steps; window }

let make_concurrent ~parts ~window =
  let parts = List.map (fun (p : complex) -> { p with window }) parts in
  { parts; window }

let simple_of_complex (c : complex) =
  make_simple ~amounts:(List.concat c.steps) ~window:c.window

let complex_of_simple (s : simple) = make_complex ~steps:[ s.amounts ] ~window:s.window

let satisfied_simple theta (s : simple) =
  List.for_all
    (fun a -> Resource_set.integrate theta a.ltype s.window >= a.quantity)
    s.amounts

let unsatisfied_amounts theta (s : simple) =
  List.filter_map
    (fun a ->
      let have = Resource_set.integrate theta a.ltype s.window in
      if have >= a.quantity then None
      else Some { a with quantity = a.quantity - have })
    s.amounts

let demand_simple (s : simple) = List.map (fun a -> (a.ltype, a.quantity)) s.amounts

let demand_complex c =
  (simple_of_complex c).amounts |> List.map (fun a -> (a.ltype, a.quantity))

let total_quantity_complex (c : complex) =
  List.fold_left
    (fun acc step ->
      List.fold_left (fun acc a -> acc + a.quantity) acc step)
    0 c.steps

let step_count (c : complex) = List.length c.steps

let compare_amount a b =
  match Located_type.compare a.ltype b.ltype with
  | 0 -> Int.compare a.quantity b.quantity
  | c -> c

let equal_amount a b = compare_amount a b = 0

let compare_complex (a : complex) (b : complex) =
  match Interval.compare a.window b.window with
  | 0 -> List.compare (List.compare compare_amount) a.steps b.steps
  | c -> c

let equal_simple (a : simple) (b : simple) =
  Interval.equal a.window b.window
  && List.equal equal_amount a.amounts b.amounts

let equal_complex a b = compare_complex a b = 0

let equal_concurrent (a : concurrent) (b : concurrent) =
  Interval.equal a.window b.window
  && List.equal equal_complex a.parts b.parts

let pp_amount ppf a =
  Format.fprintf ppf "{%d}_%a" a.quantity Located_type.pp a.ltype

let pp_amounts ppf amounts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_amount ppf amounts

let pp_simple ppf (s : simple) =
  Format.fprintf ppf "rho(%a; %a)" pp_amounts s.amounts Interval.pp s.window

let pp_complex ppf (c : complex) =
  let pp_step ppf step = Format.fprintf ppf "[%a]" pp_amounts step in
  Format.fprintf ppf "rho(%a; %a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ; ")
       pp_step)
    c.steps Interval.pp c.window

let pp_concurrent ppf (c : concurrent) =
  Format.fprintf ppf "rho({@[%a@]}; %a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ||@ ")
       pp_complex)
    c.parts Interval.pp c.window
