open Import

type segment = { interval : Interval.t; rate : int }

(* Flat slab representation: a profile is one int array of
   (start, stop, rate) triples, sorted by start, pairwise disjoint,
   rates >= 1, and no segment meeting the next with the same rate
   (canonical form).  The slab layout keeps the decide/residual hot
   path walking contiguous memory instead of chasing list cells, and
   every binary operation is a single left-to-right merge — no
   boundary lists, no closures, no sort. *)
type t = int array

type deficit = { at : Time.t; available : int; required : int }

let empty = [||]
let is_empty p = Array.length p = 0

let nseg p = Array.length p / 3
let seg_start (p : t) i = Array.unsafe_get p (3 * i)
let seg_stop (p : t) i = Array.unsafe_get p ((3 * i) + 1)
let seg_rate (p : t) i = Array.unsafe_get p ((3 * i) + 2)

let segments p =
  List.init (nseg p) (fun i ->
      {
        interval = Interval.of_pair (seg_start p i) (seg_stop p i);
        rate = seg_rate p i;
      })

(* --- scratch arena -------------------------------------------------------- *)

(* Merges build their result here and copy the exact-size slab out at
   the end, so the transient worst-case-sized buffer is allocated once
   and reused across every operation instead of churning the minor heap
   on each decide.  Nothing recursive runs while the arena is being
   written: an operation finishes (copies out) before any other profile
   operation can start. *)
let scratch = ref (Array.make 192 0)

let scratch_ensure n =
  if Array.length !scratch < n then
    scratch := Array.make (max n (2 * Array.length !scratch)) 0;
  !scratch

let scratch_copy out k = if k = 0 then empty else Array.sub out 0 k

(* --- canonical construction ---------------------------------------------- *)

exception Deficit_exn of deficit

(* Walk the merged boundaries of [p] and [q] left to right, applying
   [op slice_start rate_p rate_q] on every elementary slice and
   coalescing equal-rate neighbours as they are emitted.  [op] must
   send (0, 0) to 0 and may raise to abort (dominance and deficit
   checks pay no allocation at all that way). *)
let sweep2 op (p : t) (q : t) =
  let np = nseg p and nq = nseg q in
  let out = scratch_ensure (6 * (np + nq)) in
  let k = ref 0 in
  let run_start = ref 0 and run_rate = ref 0 in
  let ip = ref 0 and inside_p = ref false in
  let iq = ref 0 and inside_q = ref false in
  let next_p () =
    if !ip >= np then max_int
    else if !inside_p then seg_stop p !ip
    else seg_start p !ip
  and next_q () =
    if !iq >= nq then max_int
    else if !inside_q then seg_stop q !iq
    else seg_start q !iq
  in
  let rec go () =
    let t = min (next_p ()) (next_q ()) in
    if t <> max_int then begin
      (* A boundary can close one segment and open the next in the same
         tick (canonical profiles may meet with different rates). *)
      if !ip < np then begin
        if !inside_p && seg_stop p !ip = t then begin
          inside_p := false;
          incr ip
        end;
        if (not !inside_p) && !ip < np && seg_start p !ip = t then
          inside_p := true
      end;
      if !iq < nq then begin
        if !inside_q && seg_stop q !iq = t then begin
          inside_q := false;
          incr iq
        end;
        if (not !inside_q) && !iq < nq && seg_start q !iq = t then
          inside_q := true
      end;
      let rp = if !inside_p then seg_rate p !ip else 0
      and rq = if !inside_q then seg_rate q !iq else 0 in
      let r = op t rp rq in
      if r <> !run_rate then begin
        if !run_rate > 0 then begin
          out.(!k) <- !run_start;
          out.(!k + 1) <- t;
          out.(!k + 2) <- !run_rate;
          k := !k + 3
        end;
        run_start := t;
        run_rate := r
      end;
      go ()
    end
  in
  go ();
  scratch_copy out !k

(* Sum arbitrary (possibly overlapping) rate rectangles by sweeping
   their edges in time order and emitting a segment whenever the
   accumulated rate changes. *)
let of_rectangles rects =
  List.iter
    (fun (_, r) ->
      if r < 0 then invalid_arg "Profile: negative rate rectangle")
    rects;
  match List.filter (fun (_, r) -> r > 0) rects with
  | [] -> empty
  | [ (i, r) ] -> [| Interval.start i; Interval.stop i; r |]
  | rects ->
      let n = List.length rects in
      let times = Array.make (2 * n) 0 and deltas = Array.make (2 * n) 0 in
      List.iteri
        (fun j (i, r) ->
          times.(2 * j) <- Interval.start i;
          deltas.(2 * j) <- r;
          times.((2 * j) + 1) <- Interval.stop i;
          deltas.((2 * j) + 1) <- -r)
        rects;
      let order = Array.init (2 * n) Fun.id in
      Array.sort (fun a b -> Int.compare times.(a) times.(b)) order;
      let out = scratch_ensure (6 * n) in
      let k = ref 0 in
      let run_start = ref 0 and run_rate = ref 0 in
      let cur = ref 0 in
      let m = 2 * n in
      let j = ref 0 in
      while !j < m do
        let t = times.(order.(!j)) in
        while !j < m && times.(order.(!j)) = t do
          cur := !cur + deltas.(order.(!j));
          incr j
        done;
        if !cur <> !run_rate then begin
          if !run_rate > 0 then begin
            out.(!k) <- !run_start;
            out.(!k + 1) <- t;
            out.(!k + 2) <- !run_rate;
            k := !k + 3
          end;
          run_start := t;
          run_rate := !cur
        end
      done;
      scratch_copy out !k

let constant i r =
  if r < 0 then invalid_arg "Profile.constant: negative rate"
  else if r = 0 then empty
  else [| Interval.start i; Interval.stop i; r |]

let of_segments l = of_rectangles l

let rate_at p t =
  (* Binary search for the last segment starting at or before [t]. *)
  let n = nseg p in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if seg_start p mid <= t then lo := mid + 1 else hi := mid
  done;
  let i = !lo - 1 in
  if i >= 0 && t < seg_stop p i then seg_rate p i else 0

let m_add = Rota_obs.Metrics.counter "profile/add"
let m_add_s = Rota_obs.Metrics.histogram "profile/add_s"

let add_raw p q =
  if is_empty p then q
  else if is_empty q then p
  else sweep2 (fun _ rp rq -> rp + rq) p q

let add p q =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_add;
    Rota_obs.Metrics.time m_add_s (fun () -> add_raw p q)
  end
  else add_raw p q

(* Pointwise difference; fails on the earliest tick where q exceeds p. *)
let sub p q =
  if is_empty q then Ok p
  else
    match
      sweep2
        (fun t rp rq ->
          if rp < rq then
            raise (Deficit_exn { at = t; available = rp; required = rq })
          else rp - rq)
        p q
    with
    | r -> Ok r
    | exception Deficit_exn d -> Error d

let dominates p q =
  is_empty q
  ||
  match
    sweep2 (fun _ rp rq -> if rp < rq then raise Exit else 0) p q
  with
  | _ -> true
  | exception Exit -> false

(* Pointwise max(p - q, 0): the part of [p] that survives losing [q].
   A deficit clamps to zero instead of failing — the caller is
   modelling capacity being ripped away, not checking a reservation. *)
let sub_clamped p q =
  if is_empty q then p
  else sweep2 (fun _ rp rq -> if rp > rq then rp - rq else 0) p q

(* Pointwise min — the part of [p] that [q] also covers. *)
let meet p q =
  if is_empty p || is_empty q then empty
  else sweep2 (fun _ rp rq -> if rp < rq then rp else rq) p q

let integrate p w =
  let ws = Interval.start w and we = Interval.stop w in
  let n = nseg p in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let lo = max ws (seg_start p i) and hi = min we (seg_stop p i) in
    if hi > lo then acc := !acc + (seg_rate p i * (hi - lo))
  done;
  !acc

let total p =
  let n = nseg p in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + (seg_rate p i * (seg_stop p i - seg_start p i))
  done;
  !acc

let min_rate p w =
  (* The window must be fully covered, otherwise some tick has rate 0. *)
  let we = Interval.stop w in
  let n = nseg p in
  let rec go i t m =
    if t >= we then m
    else if i >= n then 0
    else
      let s = seg_start p i and e = seg_stop p i in
      if e <= t then go (i + 1) t m
      else if s > t then 0
      else go (i + 1) e (min m (seg_rate p i))
  in
  go 0 (Interval.start w) max_int

let max_rate p =
  let n = nseg p in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if seg_rate p i > !acc then acc := seg_rate p i
  done;
  !acc

let support p =
  Interval_set.of_list
    (List.init (nseg p) (fun i ->
         Interval.of_pair (seg_start p i) (seg_stop p i)))

let restrict p w =
  let ws = Interval.start w and we = Interval.stop w in
  let n = nseg p in
  let out = scratch_ensure (3 * n) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let lo = max ws (seg_start p i) and hi = min we (seg_stop p i) in
    if hi > lo then begin
      out.(!k) <- lo;
      out.(!k + 1) <- hi;
      out.(!k + 2) <- seg_rate p i;
      k := !k + 3
    end
  done;
  scratch_copy out !k

let truncate_before p t =
  let n = nseg p in
  let out = scratch_ensure (3 * n) in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let lo = max t (seg_start p i) and hi = seg_stop p i in
    if hi > lo then begin
      out.(!k) <- lo;
      out.(!k + 1) <- hi;
      out.(!k + 2) <- seg_rate p i;
      k := !k + 3
    end
  done;
  (* The common advance case expires nothing: hand back the same slab. *)
  if !k = Array.length p && (n = 0 || out.(0) = seg_start p 0) then p
  else scratch_copy out !k

let within p w =
  is_empty p
  || (seg_start p 0 >= Interval.start w
     && seg_stop p (nseg p - 1) <= Interval.stop w)

let shift p d =
  Array.init (Array.length p) (fun idx ->
      if idx mod 3 = 2 then p.(idx) else p.(idx) + d)

let first p = if is_empty p then None else Some (seg_start p 0)

let last p =
  if is_empty p then None else Some (Time.pred (seg_stop p (nseg p - 1)))

let horizon p = if is_empty p then None else Some (seg_stop p (nseg p - 1))

let completion_time p ~window ~quantity =
  if quantity <= 0 then Some (Interval.start window)
  else
    let ws = Interval.start window and we = Interval.stop window in
    let n = nseg p in
    let rec scan todo i =
      if i >= n then None
      else
        let lo = max ws (seg_start p i) and hi = min we (seg_stop p i) in
        if hi <= lo then scan todo (i + 1)
        else
          let r = seg_rate p i in
          let supply = r * (hi - lo) in
          if supply >= todo then
            (* Finishes inside the overlap: ceil(todo / rate) ticks in. *)
            Some (lo + ((todo + r - 1) / r))
          else scan (todo - supply) (i + 1)
    in
    scan quantity 0

let consume p ~window ~quantity =
  if quantity < 0 then invalid_arg "Profile.consume: negative quantity"
  else if quantity = 0 then Some (p, empty)
  else
    (* Walk available capacity inside the window earliest-first, taking
       the full rate of each tick until the last tick takes the
       remainder.  The pieces come out sorted, disjoint, and
       rate-distinct where they meet, so the allocation slab is already
       canonical. *)
    let ws = Interval.start window and we = Interval.stop window in
    let n = nseg p in
    let out = scratch_ensure (3 * (n + 1)) in
    let k = ref 0 in
    let piece lo hi r =
      (* A remainder piece can meet the previous full-rate piece with
         the same rate (todo mod r' = r) — extend instead of appending
         so the allocation slab stays canonical. *)
      if !k > 0 && out.(!k - 2) = lo && out.(!k - 1) = r then
        out.(!k - 2) <- hi
      else begin
        out.(!k) <- lo;
        out.(!k + 1) <- hi;
        out.(!k + 2) <- r;
        k := !k + 3
      end
    in
    let rec take todo i =
      if i >= n then false
      else
        let lo = max ws (seg_start p i) and hi = min we (seg_stop p i) in
        if hi <= lo then take todo (i + 1)
        else
          let r = seg_rate p i in
          let supply = r * (hi - lo) in
          if supply <= todo then begin
            piece lo hi r;
            supply = todo || take (todo - supply) (i + 1)
          end
          else begin
            let full = todo / r and rem = todo mod r in
            if full > 0 then piece lo (lo + full) r;
            if rem > 0 then piece (lo + full) (lo + full + 1) rem;
            true
          end
    in
    if not (take quantity 0) then None
    else
      let allocation = scratch_copy out !k in
      match sub p allocation with
      | Ok remaining -> Some (remaining, allocation)
      | Error _ ->
          (* The allocation was carved out of [p], so subtraction cannot
             fail. *)
          assert false

let of_terms terms =
  of_rectangles (List.map (fun t -> (Term.interval t, Term.rate t)) terms)

let to_terms ~ltype p =
  List.init (nseg p) (fun i ->
      Term.v (seg_rate p i)
        (Interval.of_pair (seg_start p i) (seg_stop p i))
        ltype)

(* Triple order (start, stop, rate) in slab layout order is exactly the
   old per-segment (interval, rate) lexicographic order, with a shorter
   prefix ordering first. *)
let compare (p : t) (q : t) =
  let np = Array.length p and nq = Array.length q in
  let rec go i =
    if i >= np || i >= nq then Int.compare np nq
    else
      let c = Int.compare p.(i) q.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal p q = p == q || compare p q = 0

let pp ppf p =
  match segments p with
  | [] -> Format.pp_print_string ppf "0"
  | segs ->
      let pp_segment ppf s =
        Format.fprintf ppf "%d@%a" s.rate Interval.pp s.interval
      in
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        pp_segment ppf segs

let pp_deficit ppf d =
  Format.fprintf ppf "deficit at %a: available %d, required %d" Time.pp d.at
    d.available d.required
