open Import

type segment = { interval : Interval.t; rate : int }

(* Invariant: segments sorted by start, pairwise disjoint, rates >= 1, and
   no segment meets the next with the same rate (canonical form). *)
type t = segment list

type deficit = { at : Time.t; available : int; required : int }

let empty = []
let is_empty p = p = []
let segments p = p

(* Rebuild canonical form from a list of (boundary-disjoint) rate
   rectangles: merge consecutive segments that meet with equal rates and
   drop zero rates. *)
let coalesce pieces =
  let step acc piece =
    match acc with
    | prev :: rest
      when prev.rate = piece.rate
           && Interval.stop prev.interval = Interval.start piece.interval ->
        { prev with interval = Interval.hull prev.interval piece.interval }
        :: rest
    | _ -> piece :: acc
  in
  List.rev (List.fold_left step [] pieces)

(* Evaluate the pointwise sum of arbitrary rectangles by slicing time at
   every rectangle boundary and summing rates on each elementary slice. *)
let of_rectangles rects =
  List.iter
    (fun (_, r) ->
      if r < 0 then invalid_arg "Profile: negative rate rectangle")
    rects;
  let rects = List.filter (fun (_, r) -> r > 0) rects in
  let boundaries =
    List.concat_map (fun (i, _) -> [ Interval.start i; Interval.stop i ]) rects
    |> List.sort_uniq Time.compare
  in
  let rec slices = function
    | a :: (b :: _ as rest) -> Interval.of_pair a b :: slices rest
    | [ _ ] | [] -> []
  in
  let rate_on slice =
    List.fold_left
      (fun acc (i, r) -> if Interval.subset slice i then acc + r else acc)
      0 rects
  in
  slices boundaries
  |> List.filter_map (fun slice ->
         let rate = rate_on slice in
         if rate > 0 then Some { interval = slice; rate } else None)
  |> coalesce

let constant i r =
  if r < 0 then invalid_arg "Profile.constant: negative rate"
  else if r = 0 then empty
  else [ { interval = i; rate = r } ]

let of_segments l = of_rectangles l

let rate_at p t =
  let covering s = Interval.mem t s.interval in
  match List.find_opt covering p with Some s -> s.rate | None -> 0

let to_rectangles p = List.map (fun s -> (s.interval, s.rate)) p

let m_add = Rota_obs.Metrics.counter "profile/add"
let m_add_s = Rota_obs.Metrics.histogram "profile/add_s"

let add p q =
  if Rota_obs.Metrics.enabled () then begin
    Rota_obs.Metrics.incr m_add;
    Rota_obs.Metrics.time m_add_s (fun () ->
        of_rectangles (to_rectangles p @ to_rectangles q))
  end
  else of_rectangles (to_rectangles p @ to_rectangles q)

(* Pointwise difference via boundary slicing; fails on the earliest tick
   where q exceeds p. *)
let sub p q =
  let boundaries =
    List.concat_map
      (fun s -> [ Interval.start s.interval; Interval.stop s.interval ])
      (p @ q)
    |> List.sort_uniq Time.compare
  in
  let rec slices = function
    | a :: (b :: _ as rest) -> Interval.of_pair a b :: slices rest
    | [ _ ] | [] -> []
  in
  let exception Deficit of deficit in
  let piece slice =
    let t = Interval.start slice in
    let have = rate_at p t and need = rate_at q t in
    if have < need then
      raise (Deficit { at = t; available = have; required = need })
    else if have > need then
      Some { interval = slice; rate = have - need }
    else None
  in
  match List.filter_map piece (slices boundaries) with
  | pieces -> Ok (coalesce pieces)
  | exception Deficit d -> Error d

let dominates p q = Result.is_ok (sub p q)

(* Pointwise max(p - q, 0): the part of [p] that survives losing [q].
   Same boundary slicing as [sub], but a deficit clamps to zero instead
   of failing — the caller is modelling capacity being ripped away, not
   checking a reservation. *)
let sub_clamped p q =
  let boundaries =
    List.concat_map
      (fun s -> [ Interval.start s.interval; Interval.stop s.interval ])
      (p @ q)
    |> List.sort_uniq Time.compare
  in
  let rec slices = function
    | a :: (b :: _ as rest) -> Interval.of_pair a b :: slices rest
    | [ _ ] | [] -> []
  in
  let piece slice =
    let t = Interval.start slice in
    let rate = rate_at p t - rate_at q t in
    if rate > 0 then Some { interval = slice; rate } else None
  in
  coalesce (List.filter_map piece (slices boundaries))

(* Pointwise min — the part of [p] that [q] also covers. *)
let meet p q =
  let boundaries =
    List.concat_map
      (fun s -> [ Interval.start s.interval; Interval.stop s.interval ])
      (p @ q)
    |> List.sort_uniq Time.compare
  in
  let rec slices = function
    | a :: (b :: _ as rest) -> Interval.of_pair a b :: slices rest
    | [ _ ] | [] -> []
  in
  let piece slice =
    let t = Interval.start slice in
    let rate = min (rate_at p t) (rate_at q t) in
    if rate > 0 then Some { interval = slice; rate } else None
  in
  coalesce (List.filter_map piece (slices boundaries))

let integrate p w =
  let contribution s =
    match Interval.inter s.interval w with
    | Some overlap -> s.rate * Interval.duration overlap
    | None -> 0
  in
  List.fold_left (fun acc s -> acc + contribution s) 0 p

let total p =
  List.fold_left (fun acc s -> acc + (s.rate * Interval.duration s.interval)) 0 p

let min_rate p w =
  (* The window must be fully covered, otherwise some tick has rate 0. *)
  let covered =
    Interval_set.subset
      (Interval_set.of_interval w)
      (Interval_set.of_list (List.map (fun s -> s.interval) p))
  in
  if not covered then 0
  else
    List.fold_left
      (fun acc s ->
        if Interval.overlaps s.interval w then min acc s.rate else acc)
      max_int p

let max_rate p = List.fold_left (fun acc s -> max acc s.rate) 0 p
let support p = Interval_set.of_list (List.map (fun s -> s.interval) p)

let restrict p w =
  List.filter_map
    (fun s ->
      match Interval.inter s.interval w with
      | Some i -> Some { s with interval = i }
      | None -> None)
    p

let truncate_before p t =
  List.filter_map
    (fun s ->
      match Interval.make ~start:(Time.max t (Interval.start s.interval))
              ~stop:(Interval.stop s.interval)
      with
      | Some i -> Some { s with interval = i }
      | None -> None)
    p

let shift p d = List.map (fun s -> { s with interval = Interval.shift s.interval d }) p

let first = function [] -> None | s :: _ -> Some (Interval.start s.interval)

let last p =
  match List.rev p with
  | [] -> None
  | s :: _ -> Some (Time.pred (Interval.stop s.interval))

let horizon p =
  match List.rev p with [] -> None | s :: _ -> Some (Interval.stop s.interval)

let completion_time p ~window ~quantity =
  if quantity <= 0 then Some (Interval.start window)
  else
    let rec scan todo = function
      | [] -> None
      | s :: rest -> (
          match Interval.inter s.interval window with
          | None -> scan todo rest
          | Some overlap ->
              let supply = s.rate * Interval.duration overlap in
              if supply >= todo then
                (* Finishes inside [overlap]: ceil(todo / rate) ticks in. *)
                let ticks = (todo + s.rate - 1) / s.rate in
                Some (Time.add (Interval.start overlap) ticks)
              else scan (todo - supply) rest)
    in
    scan quantity p

let consume p ~window ~quantity =
  if quantity < 0 then invalid_arg "Profile.consume: negative quantity"
  else if quantity = 0 then Some (p, empty)
  else
    (* Walk available capacity inside the window earliest-first, taking the
       full rate of each tick until the last tick takes the remainder. *)
    let rec take todo acc = function
      | [] -> None
      | s :: rest -> (
          match Interval.inter s.interval window with
          | None -> take todo acc rest
          | Some overlap ->
              let supply = s.rate * Interval.duration overlap in
              if supply <= todo then
                let acc = (overlap, s.rate) :: acc in
                if supply = todo then Some acc else take (todo - supply) acc rest
              else
                let full_ticks = todo / s.rate and remainder = todo mod s.rate in
                let start = Interval.start overlap in
                let acc =
                  if full_ticks > 0 then
                    (Interval.of_pair start (Time.add start full_ticks), s.rate)
                    :: acc
                  else acc
                in
                let acc =
                  if remainder > 0 then
                    let t = Time.add start full_ticks in
                    (Interval.of_pair t (Time.succ t), remainder) :: acc
                  else acc
                in
                Some acc)
    in
    match take quantity [] p with
    | None -> None
    | Some rects ->
        let allocation = of_rectangles rects in
        let remaining =
          match sub p allocation with
          | Ok r -> r
          | Error _ ->
              (* The allocation was carved out of [p], so subtraction cannot
                 fail. *)
              assert false
        in
        Some (remaining, allocation)

let of_terms terms =
  of_rectangles (List.map (fun t -> (Term.interval t, Term.rate t)) terms)

let to_terms ~ltype p =
  List.map (fun s -> Term.v s.rate s.interval ltype) p

let compare_segment a b =
  match Interval.compare a.interval b.interval with
  | 0 -> Int.compare a.rate b.rate
  | c -> c

let compare p q = List.compare compare_segment p q
let equal p q = compare p q = 0

let pp ppf = function
  | [] -> Format.pp_print_string ppf "0"
  | p ->
      let pp_segment ppf s =
        Format.fprintf ppf "%d@%a" s.rate Interval.pp s.interval
      in
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
        pp_segment ppf p

let pp_deficit ppf d =
  Format.fprintf ppf "deficit at %a: available %d, required %d" Time.pp d.at
    d.available d.required
