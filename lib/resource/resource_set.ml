open Import

(* Slab representation: two parallel arrays sorted by located type
   (strictly ascending, no duplicates), profiles all non-empty.  The
   decide/residual hot path does linear two-pointer merges over a
   handful of types instead of rebalancing a Map, and lookups are a
   binary search with no closure in sight. *)
type t = { types : Located_type.t array; profiles : Profile.t array }

type deficit = { ltype : Located_type.t; deficit : Profile.deficit }

exception Diff_failed of deficit

let empty = { types = [||]; profiles = [||] }
let is_empty set = Array.length set.types = 0
let size set = Array.length set.types

(* Index of [xi] if present, else the insertion point. *)
let search set xi =
  let lo = ref 0 and hi = ref (size set) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Located_type.compare set.types.(mid) xi < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let find xi set =
  let i = search set xi in
  if i < size set && Located_type.compare set.types.(i) xi = 0 then
    set.profiles.(i)
  else Profile.empty

let mem xi set =
  let i = search set xi in
  i < size set && Located_type.compare set.types.(i) xi = 0

let put xi profile set =
  let n = size set in
  let i = search set xi in
  let present = i < n && Located_type.compare set.types.(i) xi = 0 in
  if Profile.is_empty profile then
    if not present then set
    else
      {
        types =
          Array.append (Array.sub set.types 0 i)
            (Array.sub set.types (i + 1) (n - i - 1));
        profiles =
          Array.append
            (Array.sub set.profiles 0 i)
            (Array.sub set.profiles (i + 1) (n - i - 1));
      }
  else if present then begin
    let profiles = Array.copy set.profiles in
    profiles.(i) <- profile;
    { set with profiles }
  end
  else begin
    let types = Array.make (n + 1) xi
    and profiles = Array.make (n + 1) profile in
    Array.blit set.types 0 types 0 i;
    Array.blit set.profiles 0 profiles 0 i;
    Array.blit set.types i types (i + 1) (n - i);
    Array.blit set.profiles i profiles (i + 1) (n - i);
    { types; profiles }
  end

let update xi f set = put xi (f (find xi set)) set

let add_profile xi p set =
  if Profile.is_empty p then set
  else update xi (fun q -> Profile.add q p) set

let add_term term set =
  let xi = Term.ltype term in
  put xi (Profile.add (find xi set) (Profile.of_terms [ term ])) set

let of_pairs pairs =
  match pairs with
  | [] -> empty
  | (x0, p0) :: _ ->
      let n = List.length pairs in
      let types = Array.make n x0 and profiles = Array.make n p0 in
      List.iteri
        (fun i (x, p) ->
          types.(i) <- x;
          profiles.(i) <- p)
        pairs;
      { types; profiles }

let of_terms terms =
  match terms with
  | [] -> empty
  | first :: rest ->
      (* Group the terms by type in one sort, then aggregate each group
         with a single profile sweep (the incremental add-per-term fold
         was quadratic in the worst case). *)
      let sorted =
        List.stable_sort
          (fun s t -> Located_type.compare (Term.ltype s) (Term.ltype t))
          (first :: rest)
      in
      let rec group acc xi run = function
        | [] -> (xi, Profile.of_terms (List.rev run)) :: acc
        | t :: tl ->
            let x = Term.ltype t in
            if Located_type.compare x xi = 0 then group acc xi (t :: run) tl
            else group ((xi, Profile.of_terms (List.rev run)) :: acc) x [ t ] tl
      in
      let pairs =
        match sorted with
        | [] -> []
        | t :: tl -> List.rev (group [] (Term.ltype t) [ t ] tl)
      in
      of_pairs (List.filter (fun (_, p) -> not (Profile.is_empty p)) pairs)

let singleton term = of_terms [ term ]

let to_terms set =
  let acc = ref [] in
  for i = size set - 1 downto 0 do
    acc := Profile.to_terms ~ltype:set.types.(i) set.profiles.(i) @ !acc
  done;
  !acc

let shrink k tys prs =
  if k = Array.length tys then { types = tys; profiles = prs }
  else { types = Array.sub tys 0 k; profiles = Array.sub prs 0 k }

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let na = size a and nb = size b in
    let tys = Array.make (na + nb) a.types.(0)
    and prs = Array.make (na + nb) Profile.empty in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    let emit x p =
      tys.(!k) <- x;
      prs.(!k) <- p;
      incr k
    in
    while !i < na || !j < nb do
      if !j >= nb then begin
        emit a.types.(!i) a.profiles.(!i);
        incr i
      end
      else if !i >= na then begin
        emit b.types.(!j) b.profiles.(!j);
        incr j
      end
      else
        let c = Located_type.compare a.types.(!i) b.types.(!j) in
        if c < 0 then begin
          emit a.types.(!i) a.profiles.(!i);
          incr i
        end
        else if c > 0 then begin
          emit b.types.(!j) b.profiles.(!j);
          incr j
        end
        else begin
          emit a.types.(!i) (Profile.add a.profiles.(!i) b.profiles.(!j));
          incr i;
          incr j
        end
    done;
    shrink !k tys prs
  end

let diff a b =
  if is_empty b then Ok a
  else begin
    let na = size a and nb = size b in
    (* A type present in [b] but absent from [a] reports the same
       deficit subtracting from the empty profile would. *)
    let missing xi q =
      match Profile.sub Profile.empty q with
      | Error d -> raise (Diff_failed { ltype = xi; deficit = d })
      | Ok _ -> assert false
    in
    match
      let tys = Array.make na b.types.(0)
      and prs = Array.make na Profile.empty in
      let k = ref 0 and i = ref 0 and j = ref 0 in
      let emit x p =
        tys.(!k) <- x;
        prs.(!k) <- p;
        incr k
      in
      while !i < na || !j < nb do
        if !j >= nb then begin
          emit a.types.(!i) a.profiles.(!i);
          incr i
        end
        else if !i >= na then missing b.types.(!j) b.profiles.(!j)
        else
          let c = Located_type.compare a.types.(!i) b.types.(!j) in
          if c < 0 then begin
            emit a.types.(!i) a.profiles.(!i);
            incr i
          end
          else if c > 0 then missing b.types.(!j) b.profiles.(!j)
          else begin
            (match Profile.sub a.profiles.(!i) b.profiles.(!j) with
            | Ok r ->
                if not (Profile.is_empty r) then emit a.types.(!i) r
            | Error d ->
                raise (Diff_failed { ltype = a.types.(!i); deficit = d }));
            incr i;
            incr j
          end
      done;
      shrink !k tys prs
    with
    | result -> Ok result
    | exception Diff_failed d -> Error d
  end

let dominates a b =
  let na = size a and nb = size b in
  let rec go i j =
    if j >= nb then true
    else if i >= na then false
    else
      let c = Located_type.compare a.types.(i) b.types.(j) in
      if c < 0 then go (i + 1) j
      else if c > 0 then false
      else Profile.dominates a.profiles.(i) b.profiles.(j) && go (i + 1) (j + 1)
  in
  go 0 0

let diff_clamped a b =
  if is_empty a || is_empty b then a
  else begin
    let na = size a and nb = size b in
    let tys = Array.make na a.types.(0)
    and prs = Array.make na Profile.empty in
    let k = ref 0 and j = ref 0 in
    for i = 0 to na - 1 do
      (* subtrahend types absent from [a] clamp to nothing — skip them *)
      while !j < nb && Located_type.compare b.types.(!j) a.types.(i) < 0 do
        incr j
      done;
      let p =
        if !j < nb && Located_type.compare b.types.(!j) a.types.(i) = 0
        then begin
          let r = Profile.sub_clamped a.profiles.(i) b.profiles.(!j) in
          incr j;
          r
        end
        else a.profiles.(i)
      in
      if not (Profile.is_empty p) then begin
        tys.(!k) <- a.types.(i);
        prs.(!k) <- p;
        incr k
      end
    done;
    shrink !k tys prs
  end

let meet a b =
  let na = size a and nb = size b in
  if na = 0 || nb = 0 then empty
  else begin
    let cap = if na < nb then na else nb in
    let tys = Array.make cap a.types.(0)
    and prs = Array.make cap Profile.empty in
    let k = ref 0 in
    let rec go i j =
      if i < na && j < nb then begin
        let c = Located_type.compare a.types.(i) b.types.(j) in
        if c < 0 then go (i + 1) j
        else if c > 0 then go i (j + 1)
        else begin
          let r = Profile.meet a.profiles.(i) b.profiles.(j) in
          if not (Profile.is_empty r) then begin
            tys.(!k) <- a.types.(i);
            prs.(!k) <- r;
            incr k
          end;
          go (i + 1) (j + 1)
        end
      end
    in
    go 0 0;
    shrink !k tys prs
  end

let domain set = Array.to_list set.types
let integrate set xi w = Profile.integrate (find xi set) w

let map_profiles f set =
  let n = size set in
  if n = 0 then set
  else begin
    let tys = Array.make n set.types.(0)
    and prs = Array.make n Profile.empty in
    let k = ref 0 in
    let unchanged = ref true in
    for i = 0 to n - 1 do
      let p = f set.types.(i) set.profiles.(i) in
      if p != set.profiles.(i) then unchanged := false;
      if not (Profile.is_empty p) then begin
        tys.(!k) <- set.types.(i);
        prs.(!k) <- p;
        incr k
      end
    done;
    if !unchanged && !k = n then set else shrink !k tys prs
  end

let restrict set w = map_profiles (fun _ p -> Profile.restrict p w) set

let truncate_before set t =
  map_profiles (fun _ p -> Profile.truncate_before p t) set

let within set w =
  let n = size set in
  let rec go i = i >= n || (Profile.within set.profiles.(i) w && go (i + 1)) in
  go 0

let total set =
  let acc = ref 0 in
  for i = 0 to size set - 1 do
    acc := !acc + Profile.total set.profiles.(i)
  done;
  !acc

let horizon set =
  let acc = ref None in
  for i = 0 to size set - 1 do
    match (Profile.horizon set.profiles.(i), !acc) with
    | Some h, Some a -> if Time.compare h a > 0 then acc := Some h
    | Some h, None -> acc := Some h
    | None, _ -> ()
  done;
  !acc

let fold f set init =
  let acc = ref init in
  for i = 0 to size set - 1 do
    acc := f set.types.(i) set.profiles.(i) !acc
  done;
  !acc

let equal a b =
  a == b
  || size a = size b
     &&
     let n = size a in
     let rec go i =
       i >= n
       || Located_type.compare a.types.(i) b.types.(i) = 0
          && Profile.equal a.profiles.(i) b.profiles.(i)
          && go (i + 1)
     in
     go 0

(* Binding order (type, profile) in slab order matches Map.compare over
   the old representation: lexicographic over sorted bindings, shorter
   prefix first. *)
let compare a b =
  let na = size a and nb = size b in
  let rec go i =
    if i >= na || i >= nb then Int.compare na nb
    else
      let c = Located_type.compare a.types.(i) b.types.(i) in
      if c <> 0 then c
      else
        let c = Profile.compare a.profiles.(i) b.profiles.(i) in
        if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf set =
  let terms = to_terms set in
  match terms with
  | [] -> Format.pp_print_string ppf "{}"
  | _ ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Term.pp)
        terms

let pp_deficit ppf d =
  Format.fprintf ppf "%a: %a" Located_type.pp d.ltype Profile.pp_deficit
    d.deficit
