open Import

module Ltmap = Map.Make (Located_type)

type t = Profile.t Ltmap.t

type deficit = { ltype : Located_type.t; deficit : Profile.deficit }

let empty = Ltmap.empty
let is_empty = Ltmap.is_empty

let put xi profile set =
  if Profile.is_empty profile then Ltmap.remove xi set
  else Ltmap.add xi profile set

let find xi set =
  match Ltmap.find_opt xi set with Some p -> p | None -> Profile.empty

let mem xi set = Ltmap.mem xi set

let add_term term set =
  let xi = Term.ltype term in
  put xi (Profile.add (find xi set) (Profile.of_terms [ term ])) set

let of_terms terms = List.fold_left (fun set t -> add_term t set) empty terms
let singleton term = add_term term empty

let to_terms set =
  Ltmap.bindings set
  |> List.concat_map (fun (xi, profile) -> Profile.to_terms ~ltype:xi profile)

let union a b =
  Ltmap.union (fun _ p q -> Some (Profile.add p q)) a b

let diff a b =
  let exception Failed of deficit in
  let subtract xi q acc =
    match Profile.sub (find xi a) q with
    | Ok remaining -> put xi remaining acc
    | Error d -> raise (Failed { ltype = xi; deficit = d })
  in
  match Ltmap.fold subtract b a with
  | result -> Ok result
  | exception Failed d -> Error d

let dominates a b = Result.is_ok (diff a b)

let diff_clamped a b =
  Ltmap.fold
    (fun xi q acc -> put xi (Profile.sub_clamped (find xi a) q) acc)
    b a

let meet a b =
  Ltmap.fold
    (fun xi p acc -> put xi (Profile.meet p (find xi b)) acc)
    a empty

let domain set = List.map fst (Ltmap.bindings set)
let integrate set xi w = Profile.integrate (find xi set) w
let restrict set w =
  Ltmap.filter_map (fun _ p ->
      let p = Profile.restrict p w in
      if Profile.is_empty p then None else Some p)
    set

let truncate_before set t =
  Ltmap.filter_map (fun _ p ->
      let p = Profile.truncate_before p t in
      if Profile.is_empty p then None else Some p)
    set

let total set = Ltmap.fold (fun _ p acc -> acc + Profile.total p) set 0

let horizon set =
  Ltmap.fold
    (fun _ p acc ->
      match (Profile.horizon p, acc) with
      | Some h, Some a -> Some (Time.max h a)
      | Some h, None -> Some h
      | None, a -> a)
    set None

let map_profiles f set =
  Ltmap.fold (fun xi p acc -> put xi (f xi p) acc) set empty

let fold f set init = Ltmap.fold f set init
let update xi f set = put xi (f (find xi set)) set
let equal a b = Ltmap.equal Profile.equal a b
let compare a b = Ltmap.compare Profile.compare a b

let pp ppf set =
  let terms = to_terms set in
  match terms with
  | [] -> Format.pp_print_string ppf "{}"
  | _ ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Term.pp)
        terms

let pp_deficit ppf d =
  Format.fprintf ppf "%a: %a" Located_type.pp d.ltype Profile.pp_deficit
    d.deficit
