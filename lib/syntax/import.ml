(* Short aliases for the substrate libraries used throughout this library. *)
module Time = Rota_interval.Time
module Interval = Rota_interval.Interval
module Location = Rota_resource.Location
module Located_type = Rota_resource.Located_type
module Term = Rota_resource.Term
module Resource_set = Rota_resource.Resource_set
module Actor_name = Rota_actor.Actor_name
module Action = Rota_actor.Action
module Program = Rota_actor.Program
module Computation = Rota_actor.Computation
module Trace = Rota_sim.Trace
module Fault = Rota_sim.Fault
module Session = Rota.Session
