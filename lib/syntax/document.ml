open Import

type resource = { term : Term.t; join_at : Time.t }

type t = {
  resources : resource list;
  computations : Computation.t list;
  sessions : Session.t list;
  faults : Fault.plan;
}

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string * int

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error (message, line))) fmt

type stream = { tokens : Lexer.located array; mutable pos : int }

let peek s =
  if s.pos < Array.length s.tokens then Some s.tokens.(s.pos) else None

let line_of s =
  match peek s with
  | Some t -> t.Lexer.line
  | None -> (
      match Array.length s.tokens with
      | 0 -> 1
      | n -> s.tokens.(n - 1).Lexer.line)

let next s =
  match peek s with
  | Some t ->
      s.pos <- s.pos + 1;
      t
  | None -> fail (line_of s) "unexpected end of input"

let expect_newline s =
  match next s with
  | { Lexer.token = Lexer.Newline; _ } -> ()
  | t -> fail t.Lexer.line "expected end of line, got %a" Lexer.pp_token t.Lexer.token

let expect_int s what =
  match next s with
  | { Lexer.token = Lexer.Int n; _ } -> n
  | t -> fail t.Lexer.line "expected %s (an integer), got %a" what Lexer.pp_token t.Lexer.token

let expect_ident s what =
  match next s with
  | { Lexer.token = Lexer.Ident id; _ } -> id
  | t -> fail t.Lexer.line "expected %s, got %a" what Lexer.pp_token t.Lexer.token

let expect_keyword s kw =
  let t = next s in
  match t.Lexer.token with
  | Lexer.Ident id when String.equal id kw -> ()
  | other -> fail t.Lexer.line "expected %S, got %a" kw Lexer.pp_token other

let accept_keyword s kw =
  match peek s with
  | Some { Lexer.token = Lexer.Ident id; _ } when String.equal id kw ->
      s.pos <- s.pos + 1;
      true
  | _ -> false

let accept s token =
  match peek s with
  | Some t when t.Lexer.token = token ->
      s.pos <- s.pos + 1;
      true
  | _ -> false

let parse_interval s =
  expect_keyword s "from";
  let start = expect_int s "the start tick" in
  expect_keyword s "to";
  let stop = expect_int s "the end tick" in
  if start >= stop then fail (line_of s) "empty interval [%d,%d)" start stop;
  Interval.of_pair start stop

let parse_ltype s =
  let kind = expect_ident s "a resource kind" in
  if String.equal kind "network" then begin
    let src = expect_ident s "the source location" in
    if not (accept s Lexer.Arrow) then fail (line_of s) "expected \"->\"";
    let dst = expect_ident s "the destination location" in
    Located_type.network ~src:(Location.make src) ~dst:(Location.make dst)
  end
  else begin
    if not (accept s Lexer.At_sign) then
      fail (line_of s) "expected \"@\" after resource kind %s" kind;
    let where = Location.make (expect_ident s "a location") in
    match kind with
    | "cpu" -> Located_type.cpu where
    | "memory" -> Located_type.memory where
    | custom -> Located_type.custom custom where
  end

let parse_resource s =
  (* After the [resource] keyword. *)
  let line = line_of s in
  let ltype = parse_ltype s in
  expect_keyword s "rate";
  let rate = expect_int s "the rate" in
  if rate < 1 then fail line "rate must be positive, got %d" rate;
  let interval = parse_interval s in
  let join_at = if accept_keyword s "join" then expect_int s "the join tick" else 0 in
  expect_newline s;
  { term = Term.v rate interval ltype; join_at }

let parse_fault s =
  (* After the [fault] keyword. *)
  let line = line_of s in
  let kw = expect_ident s "a fault kind" in
  match kw with
  | "revoke" | "rejoin" ->
      let ltype = parse_ltype s in
      expect_keyword s "rate";
      let rate = expect_int s "the rate" in
      if rate < 1 then fail line "rate must be positive, got %d" rate;
      let interval = parse_interval s in
      let at =
        if accept_keyword s "at" then expect_int s "the delivery tick"
        else Interval.start interval
      in
      expect_newline s;
      let slice = Resource_set.singleton (Term.v rate interval ltype) in
      {
        Fault.at;
        kind =
          (if String.equal kw "revoke" then Fault.Revoke slice
           else Fault.Rejoin slice);
      }
  | "blackout" ->
      let location = Location.make (expect_ident s "a location") in
      let window = parse_interval s in
      expect_newline s;
      {
        Fault.at = Interval.start window;
        kind = Fault.Blackout { location; until = Interval.stop window };
      }
  | "slowdown" ->
      let computation = expect_ident s "the computation id" in
      expect_keyword s "factor";
      let factor = expect_int s "the factor" in
      if factor < 2 then fail line "factor must be at least 2, got %d" factor;
      expect_keyword s "at";
      let at = expect_int s "the delivery tick" in
      expect_newline s;
      { Fault.at; kind = Fault.Slowdown { computation; factor } }
  | other ->
      fail line "unknown fault kind %S (revoke, blackout, slowdown or rejoin)"
        other

let parse_action s =
  (* The keyword has been peeked, not consumed. *)
  let kw = expect_ident s "an action" in
  let action =
    match kw with
    | "evaluate" -> Action.evaluate (expect_int s "the complexity")
    | "send" ->
        let dest = Actor_name.make (expect_ident s "the destination actor") in
        let size =
          if accept_keyword s "size" then expect_int s "the message size" else 1
        in
        Action.send ~dest ~size
    | "create" -> Action.create (Actor_name.make (expect_ident s "the child actor"))
    | "ready" -> Action.ready
    | "migrate" -> Action.migrate (Location.make (expect_ident s "the target location"))
    | other -> fail (line_of s) "unknown action %S" other
  in
  expect_newline s;
  action

let rec parse_actions s acc =
  match peek s with
  | Some { Lexer.token = Lexer.Ident kw; _ }
    when List.mem kw [ "evaluate"; "send"; "create"; "ready"; "migrate" ] ->
      parse_actions s (parse_action s :: acc)
  | _ -> List.rev acc

let parse_event s =
  match peek s with
  | Some { Lexer.token = Lexer.Ident "await"; _ } ->
      s.pos <- s.pos + 1;
      let sender = Actor_name.make (expect_ident s "the awaited actor") in
      expect_newline s;
      Session.Await sender
  | _ -> Session.Act (parse_action s)

let rec parse_events s acc =
  match peek s with
  | Some { Lexer.token = Lexer.Ident kw; _ }
    when List.mem kw
           [ "evaluate"; "send"; "create"; "ready"; "migrate"; "await" ] ->
      parse_events s (parse_event s :: acc)
  | _ -> List.rev acc

let parse_actor s =
  expect_keyword s "actor";
  let name = Actor_name.make (expect_ident s "the actor name") in
  expect_keyword s "at";
  let home = Location.make (expect_ident s "the home location") in
  expect_newline s;
  let actions = parse_actions s [] in
  Program.make ~name ~home actions

let rec parse_actors s acc =
  match peek s with
  | Some { Lexer.token = Lexer.Ident "actor"; _ } ->
      parse_actors s (parse_actor s :: acc)
  | _ -> List.rev acc

let parse_participant s =
  expect_keyword s "actor";
  let name = Actor_name.make (expect_ident s "the actor name") in
  expect_keyword s "at";
  let home = Location.make (expect_ident s "the home location") in
  expect_newline s;
  Session.participant ~name ~home (parse_events s [])

let rec parse_participants s acc =
  match peek s with
  | Some { Lexer.token = Lexer.Ident "actor"; _ } ->
      parse_participants s (parse_participant s :: acc)
  | _ -> List.rev acc

let parse_session s =
  (* After the [session] keyword. *)
  let line = line_of s in
  let id = expect_ident s "the session id" in
  expect_keyword s "start";
  let start = expect_int s "the start tick" in
  expect_keyword s "deadline";
  let deadline = expect_int s "the deadline tick" in
  expect_newline s;
  let participants = parse_participants s [] in
  match Session.make ~id ~start ~deadline participants with
  | Ok session -> session
  | Error msg -> fail line "%s" msg

let parse_computation s =
  (* After the [computation] keyword. *)
  let line = line_of s in
  let id = expect_ident s "the computation id" in
  expect_keyword s "start";
  let start = expect_int s "the start tick" in
  expect_keyword s "deadline";
  let deadline = expect_int s "the deadline tick" in
  expect_newline s;
  let programs = parse_actors s [] in
  match Computation.make ~id ~start ~deadline programs with
  | c -> c
  | exception Invalid_argument msg -> fail line "%s" msg

let parse input =
  match Lexer.tokenize input with
  | Error e -> Error (Format.asprintf "%a" Lexer.pp_error e)
  | Ok tokens -> (
      let s = { tokens = Array.of_list tokens; pos = 0 } in
      let resources = ref [] and computations = ref [] and sessions = ref [] in
      let faults = ref [] in
      let rec loop () =
        match peek s with
        | None -> ()
        | Some { Lexer.token = Lexer.Newline; _ } ->
            s.pos <- s.pos + 1;
            loop ()
        | Some { Lexer.token = Lexer.Ident "resource"; _ } ->
            s.pos <- s.pos + 1;
            resources := parse_resource s :: !resources;
            loop ()
        | Some { Lexer.token = Lexer.Ident "computation"; _ } ->
            s.pos <- s.pos + 1;
            computations := parse_computation s :: !computations;
            loop ()
        | Some { Lexer.token = Lexer.Ident "session"; _ } ->
            s.pos <- s.pos + 1;
            sessions := parse_session s :: !sessions;
            loop ()
        | Some { Lexer.token = Lexer.Ident "fault"; _ } ->
            s.pos <- s.pos + 1;
            faults := parse_fault s :: !faults;
            loop ()
        | Some t ->
            fail t.Lexer.line
              "expected \"resource\", \"computation\", \"session\" or \
               \"fault\", got %a"
              Lexer.pp_token t.Lexer.token
      in
      match loop () with
      | () ->
          Ok
            {
              resources = List.rev !resources;
              computations = List.rev !computations;
              sessions = List.rev !sessions;
              faults = Fault.sort (List.rev !faults);
            }
      | exception Parse_error (message, line) ->
          Error (Printf.sprintf "line %d: %s" line message))

(* --- semantics ------------------------------------------------------------ *)

let capacity doc = Resource_set.of_terms (List.map (fun r -> r.term) doc.resources)

let to_trace doc =
  let joins =
    List.map
      (fun r -> (r.join_at, Trace.Join (Resource_set.singleton r.term)))
      doc.resources
  in
  let arrivals =
    List.map
      (fun (c : Computation.t) -> (c.Computation.start, Trace.Arrive c))
      doc.computations
  in
  let session_arrivals =
    List.map
      (fun (s : Session.t) -> (s.Session.start, Trace.Arrive_session s))
      doc.sessions
  in
  Trace.of_events (joins @ arrivals @ session_arrivals)

(* --- printing ------------------------------------------------------------- *)

let print_ltype buf xi =
  match (xi : Located_type.t) with
  | Located_type.Cpu l -> Printf.bprintf buf "cpu@%s" (Location.name l)
  | Located_type.Memory l -> Printf.bprintf buf "memory@%s" (Location.name l)
  | Located_type.Network (src, dst) ->
      Printf.bprintf buf "network %s -> %s" (Location.name src) (Location.name dst)
  | Located_type.Custom (kind, l) ->
      Printf.bprintf buf "%s@%s" kind (Location.name l)

let print_action buf (a : Action.t) =
  match a with
  | Action.Evaluate { complexity } -> Printf.bprintf buf "    evaluate %d\n" complexity
  | Action.Send { dest; size } ->
      Printf.bprintf buf "    send %s size %d\n" (Actor_name.name dest) size
  | Action.Create { child } -> Printf.bprintf buf "    create %s\n" (Actor_name.name child)
  | Action.Ready -> Buffer.add_string buf "    ready\n"
  | Action.Migrate { dest } -> Printf.bprintf buf "    migrate %s\n" (Location.name dest)

let print_event buf (e : Session.event) =
  match e with
  | Session.Act a -> print_action buf a
  | Session.Await sender ->
      Printf.bprintf buf "    await %s\n" (Actor_name.name sender)

let print doc =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf "resource ";
      print_ltype buf (Term.ltype r.term);
      Printf.bprintf buf " rate %d from %d to %d" (Term.rate r.term)
        (Interval.start (Term.interval r.term))
        (Interval.stop (Term.interval r.term));
      if r.join_at <> 0 then Printf.bprintf buf " join %d" r.join_at;
      Buffer.add_char buf '\n')
    doc.resources;
  List.iter
    (fun (c : Computation.t) ->
      Printf.bprintf buf "\ncomputation %s start %d deadline %d\n"
        c.Computation.id c.Computation.start c.Computation.deadline;
      List.iter
        (fun (p : Program.t) ->
          Printf.bprintf buf "  actor %s at %s\n"
            (Actor_name.name p.Program.name)
            (Location.name p.Program.home);
          List.iter (print_action buf) p.Program.actions)
        c.Computation.programs)
    doc.computations;
  List.iter
    (fun (s : Session.t) ->
      Printf.bprintf buf "\nsession %s start %d deadline %d\n" s.Session.id
        s.Session.start s.Session.deadline;
      List.iter
        (fun (p : Session.participant) ->
          Printf.bprintf buf "  actor %s at %s\n"
            (Actor_name.name p.Session.name)
            (Location.name p.Session.home);
          List.iter (print_event buf) p.Session.events)
        s.Session.participants)
    doc.sessions;
  if doc.faults <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun (f : Fault.t) ->
      match f.Fault.kind with
      | Fault.Revoke slice | Fault.Rejoin slice ->
          let kw =
            match f.Fault.kind with
            | Fault.Revoke _ -> "revoke"
            | _ -> "rejoin"
          in
          (* A multi-term slice prints as one stanza per term, each with
             the same delivery tick — semantically the same fault. *)
          List.iter
            (fun term ->
              Printf.bprintf buf "fault %s " kw;
              print_ltype buf (Term.ltype term);
              Printf.bprintf buf " rate %d from %d to %d at %d\n"
                (Term.rate term)
                (Interval.start (Term.interval term))
                (Interval.stop (Term.interval term))
                f.Fault.at)
            (Resource_set.to_terms slice)
      | Fault.Blackout { location; until } ->
          Printf.bprintf buf "fault blackout %s from %d to %d\n"
            (Location.name location) f.Fault.at until
      | Fault.Slowdown { computation; factor } ->
          Printf.bprintf buf "fault slowdown %s factor %d at %d\n" computation
            factor f.Fault.at)
    doc.faults;
  Buffer.contents buf

let pp ppf doc = Format.pp_print_string ppf (print doc)
