open Import

(** The scenario language.

    A small line-oriented text format for describing an open distributed
    system — its resources (with explicit join instants and departure
    times, per the paper's joining rule) and its deadline-constrained
    computations — so scenarios can live in files, be diffed, and be fed
    to the [rota] CLI.

    {v
# three nodes and a link
resource cpu@l1 rate 2 from 0 to 30
resource cpu@l2 rate 1 from 0 to 30
resource network l1 -> l2 rate 1 from 0 to 30
# a volunteer joins at t=5 and leaves at t=25
resource cpu@l3 rate 2 from 5 to 25 join 5

computation job1 start 0 deadline 30
  actor a1 at l1
    evaluate 2
    send a2 size 1
    ready
  actor a2 at l2
    evaluate 1
    v}

    Keywords lead every line, so indentation is cosmetic.  [#] comments
    run to end of line.  Resource kinds other than [cpu], [memory] and
    [network] parse as custom kinds ([resource gpu@l2 rate 1 ...]).

    Interacting-actor workflows use [session] blocks, identical to
    [computation] blocks except that actor bodies may also contain
    [await <actor>] lines:

    {v
session rpc start 0 deadline 40
  actor client at l1
    evaluate 1
    send server size 1
    await server
    ready
  actor server at l2
    await client
    evaluate 1
    send client size 1
    v}

    Fault plans (see [Rota_sim.Fault]) are declared with one-line [fault]
    stanzas — unannounced failures the engine injects during the run, as
    opposed to the declared departures of [resource] lines:

    {v
# half of l1's cpu leaves at t=10 without notice
fault revoke cpu@l1 rate 1 from 10 to 30
# ... and churns back at t=18
fault rejoin cpu@l1 rate 1 from 18 to 30
fault blackout l2 from 12 to 20
fault slowdown job1 factor 2 at 15
    v}

    [revoke]/[rejoin] take a resource spec like [resource] lines, with an
    optional trailing [at <tick>] (default: the interval start) for the
    delivery tick; [blackout]'s window is its [from .. to]; [slowdown]
    names a computation and inflates its remaining work by [factor]. *)

type resource = {
  term : Term.t;
  join_at : Time.t;
      (** When the resource joins the system (default [0]); its departure
          is the end of the term's interval. *)
}

type t = {
  resources : resource list;
  computations : Computation.t list;
  sessions : Session.t list;
      (** Interacting-actor sessions: [session] blocks whose actor bodies
          may contain [await <actor>] lines. *)
  faults : Fault.plan;
      (** Declared [fault] stanzas, sorted by delivery time.  Not part of
          {!to_trace} (faults are injected beside the trace, via
          [Engine.run ~faults]). *)
}

val parse : string -> (t, string) result
(** Parses a scenario; errors carry the source line. *)

val capacity : t -> Resource_set.t
(** All resources as one set (what an omniscient observer would see). *)

val to_trace : t -> Trace.t
(** The open-system trace: each resource joins at its [join_at], each
    computation arrives at its start time. *)

val print : t -> string
(** Canonical text; [parse (print d)] succeeds and round-trips the
    document. *)

val pp : Format.formatter -> t -> unit
